#include "core/random.hpp"

#include <cmath>
#include <numbers>

#include "core/error.hpp"

namespace msehsim {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_(0u), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Pcg32::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Pcg32::next_double() {
  // 32 random bits -> [0,1) with 2^-32 resolution; ample for physical noise.
  return next_u32() * 0x1p-32;
}

double Pcg32::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

std::uint32_t Pcg32::next_below(std::uint32_t n) {
  require_spec(n > 0, "Pcg32::next_below requires n > 0");
  // Lemire's nearly-divisionless method is overkill here; simple rejection
  // keeps the stream consumption predictable for tests.
  const std::uint32_t threshold = (0u - n) % n;
  for (;;) {
    const std::uint32_t r = next_u32();
    if (r >= threshold) return r % n;
  }
}

double Pcg32::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller. Guard against log(0).
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Pcg32::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Pcg32::exponential(double mean) {
  require_spec(mean > 0.0, "Pcg32::exponential requires mean > 0");
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Pcg32::weibull(double k, double lambda) {
  require_spec(k > 0.0 && lambda > 0.0, "Pcg32::weibull requires k, lambda > 0");
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  return lambda * std::pow(-std::log(u), 1.0 / k);
}

bool Pcg32::bernoulli(double p) { return next_double() < p; }

std::uint64_t stream_key(std::string_view name) {
  std::uint64_t hash = 14695981039346656037ULL;  // FNV offset basis
  for (const char c : name) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ULL;  // FNV prime
  }
  return hash;
}

}  // namespace msehsim
