// Concrete transducer models for every harvester type in Table I.
//
// Each model maps one AmbientConditions channel to a DC I-V curve with
// datasheet-level parameters. The defaults are sized for the wireless-
// sensor-node scale the survey targets (mW-class outdoor, sub-mW indoor).
#pragma once

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string>

#include "harvest/harvester.hpp"

namespace msehsim::harvest {

/// Photovoltaic panel — single-diode model.
///
/// I(V) = Iph - I0 (exp(V / (n Ns Vt)) - 1), with Iph proportional to
/// irradiance. Indoor operation converts illuminance to equivalent
/// irradiance via the configured luminous efficacy.
class PvPanel final : public Harvester {
 public:
  struct Params {
    Volts voc_stc{4.2};           ///< open-circuit voltage at 1000 W/m^2
    Amps isc_stc{0.060};          ///< short-circuit current at 1000 W/m^2
    double diode_ideality{1.6};
    int series_cells{7};
    bool indoor{false};           ///< read illuminance instead of irradiance
    double lux_per_wm2{120.0};    ///< daylight-equivalent conversion
    double indoor_derating{0.6};  ///< indoor cells are less efficient
  };

  PvPanel(std::string name, Params params);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] HarvesterKind kind() const override {
    return HarvesterKind::kPhotovoltaic;
  }
  [[nodiscard]] Amps current_at(Volts v) const override;
  [[nodiscard]] Volts open_circuit_voltage() const override;
  [[nodiscard]] OperatingPoint shifted_mpp(Volts shift) const override;

 protected:
  void do_set_conditions(const env::AmbientConditions& c) override;
  [[nodiscard]] OperatingPoint compute_mpp() const override;

 public:
  [[nodiscard]] const Params& params() const { return params_; }

 private:
  [[nodiscard]] double thermal_voltage() const;

  std::string name_;
  Params params_;
  Amps photo_current_{0.0};
  Amps saturation_current_{0.0};
};

/// Micro wind turbine (Carli et al. [7] class): swept-area power with a
/// fixed power coefficient, cut-in/rated limits, PM generator + rectifier
/// modelled as a speed-proportional Thevenin source capped by the
/// aerodynamically available power.
class WindTurbine final : public Harvester {
 public:
  struct Params {
    double rotor_area_m2{0.010};     ///< ~11 cm diameter micro turbine
    double power_coefficient{0.25};
    MetersPerSecond cut_in{2.0};
    MetersPerSecond rated{10.0};
    Volts voc_per_ms{0.9};           ///< rectified EMF per m/s of wind
    Ohms internal_resistance{15.0};
    double fluid_density{1.225};     ///< air; water turbines override
  };

  WindTurbine(std::string name, Params params);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] HarvesterKind kind() const override { return kind_; }
  [[nodiscard]] Amps current_at(Volts v) const override;
  [[nodiscard]] Volts open_circuit_voltage() const override;
  /// Thevenin only while the aero cap is slack (Voc^2/4R <= available);
  /// a capped turbine's plateau is not a linear curve.
  [[nodiscard]] std::optional<TheveninSource> thevenin_equivalent()
      const override;
  [[nodiscard]] OperatingPoint shifted_mpp(Volts shift) const override;

 protected:
  void do_set_conditions(const env::AmbientConditions& c) override;
  [[nodiscard]] OperatingPoint compute_mpp() const override;

 public:

  /// Aerodynamic power available at the latched speed (upper bound).
  [[nodiscard]] Watts available_power() const { return available_; }

  /// Factory for a micro hydro generator (reads the water_flow channel).
  static WindTurbine water_turbine(std::string name);

 private:
  WindTurbine(std::string name, Params params, HarvesterKind kind);
  void latch_speed(MetersPerSecond speed);

  std::string name_;
  Params params_;
  HarvesterKind kind_{HarvesterKind::kWind};
  TheveninSource source_;
  Watts available_{0.0};
};

/// Thermoelectric generator: Seebeck Thevenin source, Voc = S_total * dT.
class Teg final : public Harvester {
 public:
  struct Params {
    Volts seebeck_per_kelvin{0.05};  ///< module-level Seebeck coefficient
    Ohms internal_resistance{5.0};
  };

  Teg(std::string name, Params params);

  // The conditions -> curve -> MPP sequence runs once per lane per step in
  // trace-driven runs (linear curve, so the MPP memo misses whenever the
  // gradient moves); defined inline so a devirtualized call site pays
  // straight-line math instead of three call hops.
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] HarvesterKind kind() const override {
    return HarvesterKind::kThermoelectric;
  }
  [[nodiscard]] Amps current_at(Volts v) const override {
    if (v.value() < 0.0) return Amps{0.0};
    return source_.current_at(v);
  }
  [[nodiscard]] Volts open_circuit_voltage() const override {
    return source_.voc;
  }
  [[nodiscard]] std::optional<TheveninSource> thevenin_equivalent()
      const override {
    return source_;
  }

 protected:
  void do_set_conditions(const env::AmbientConditions& c) override {
    const double dt = std::max(0.0, c.thermal_gradient.value());
    source_ =
        TheveninSource{params_.seebeck_per_kelvin * dt, params_.internal_resistance};
  }
  [[nodiscard]] OperatingPoint compute_mpp() const override {
    return thevenin_mpp(*this, source_.voc);
  }

 public:

 private:
  std::string name_;
  Params params_;
  TheveninSource source_;
};

/// Resonant vibration harvester (piezoelectric or electromagnetic).
///
/// Peak electrical power follows the Williams-Yates limit
/// P = m a^2 / (8 zeta omega) at resonance, with a Lorentzian roll-off for
/// detuned excitation; the rectified DC side is a Thevenin source whose
/// maximum power equals that bound.
class VibrationHarvester final : public Harvester {
 public:
  struct Params {
    double proof_mass_kg{0.010};
    double damping_ratio{0.02};
    Hertz resonant_frequency{50.0};
    double bandwidth_fraction{0.05};  ///< half-power bandwidth / f0
    Volts optimal_voltage{3.3};       ///< rectified MPP voltage
    double transduction_efficiency{0.6};
  };

  VibrationHarvester(std::string name, Params params, HarvesterKind kind);

  // Inline hot path, same rationale as Teg: one conditions -> MPP pass per
  // lane per step on vibration traces.
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] HarvesterKind kind() const override { return kind_; }
  [[nodiscard]] Amps current_at(Volts v) const override {
    if (v.value() < 0.0) return Amps{0.0};
    return source_.current_at(v);
  }
  [[nodiscard]] Volts open_circuit_voltage() const override {
    return source_.voc;
  }
  [[nodiscard]] std::optional<TheveninSource> thevenin_equivalent()
      const override {
    return source_;
  }

 protected:
  void do_set_conditions(const env::AmbientConditions& c) override {
    const double a = c.vibration_rms.value();
    const double f = c.vibration_freq.value();
    if (a <= 0.0 || f <= 0.0) {
      source_ = TheveninSource{Volts{0.0}, Ohms{1.0}};
      return;
    }
    const double omega =
        2.0 * std::numbers::pi * params_.resonant_frequency.value();
    // Williams-Yates resonant bound, derated by transduction efficiency.
    const double p_res = params_.proof_mass_kg * a * a /
                         (8.0 * params_.damping_ratio * omega) *
                         params_.transduction_efficiency;
    // Lorentzian roll-off when the excitation is detuned from resonance.
    const double half_bw =
        0.5 * params_.bandwidth_fraction * params_.resonant_frequency.value();
    const double detune = (f - params_.resonant_frequency.value()) / half_bw;
    const double p_max = p_res / (1.0 + detune * detune);
    if (p_max <= 0.0) {
      source_ = TheveninSource{Volts{0.0}, Ohms{1.0}};
      return;
    }
    // Thevenin source whose MPP sits at (optimal_voltage, p_max).
    const Volts voc = params_.optimal_voltage * 2.0;
    const Ohms r = Ohms{voc.value() * voc.value() / (4.0 * p_max)};
    source_ = TheveninSource{voc, r};
  }
  [[nodiscard]] OperatingPoint compute_mpp() const override {
    return thevenin_mpp(*this, source_.voc);
  }

 public:

  static VibrationHarvester piezo(std::string name, Params params);
  static VibrationHarvester piezo(std::string name) { return piezo(std::move(name), Params{}); }
  static VibrationHarvester electromagnetic(std::string name, Params params);
  static VibrationHarvester electromagnetic(std::string name) {
    return electromagnetic(std::move(name), Params{});
  }

 private:
  std::string name_;
  Params params_;
  HarvesterKind kind_;
  TheveninSource source_;
};

/// RF rectenna: incident power density x aperture, through a sensitivity
/// threshold and an input-power-dependent RF-DC conversion efficiency.
class RfHarvester final : public Harvester {
 public:
  struct Params {
    double aperture_m2{0.005};       ///< antenna effective aperture
    Watts sensitivity{1e-6};         ///< below this, no rectification
    double peak_efficiency{0.5};
    Watts efficiency_knee{1e-4};     ///< input power where eff. saturates
    Volts optimal_voltage{2.0};
  };

  RfHarvester(std::string name, Params params);

  // Inline hot path, same rationale as Teg.
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] HarvesterKind kind() const override { return HarvesterKind::kRf; }
  [[nodiscard]] Amps current_at(Volts v) const override {
    if (v.value() < 0.0) return Amps{0.0};
    return source_.current_at(v);
  }
  [[nodiscard]] Volts open_circuit_voltage() const override {
    return source_.voc;
  }
  [[nodiscard]] std::optional<TheveninSource> thevenin_equivalent()
      const override {
    return source_;
  }

 protected:
  void do_set_conditions(const env::AmbientConditions& c) override {
    const Watts incident =
        Watts{c.rf_power_density.value() * params_.aperture_m2};
    if (incident < params_.sensitivity) {
      source_ = TheveninSource{Volts{0.0}, Ohms{1.0}};
      return;
    }
    // Efficiency rises with input power and saturates past the knee
    // (rectifier diodes need forward bias) — standard rectenna behaviour.
    const double x = incident.value() / params_.efficiency_knee.value();
    const double eff = params_.peak_efficiency * (x / (1.0 + x));
    const double p_out = incident.value() * eff;
    const Volts voc = params_.optimal_voltage * 2.0;
    source_ =
        TheveninSource{voc, Ohms{voc.value() * voc.value() / (4.0 * p_out)}};
  }
  [[nodiscard]] OperatingPoint compute_mpp() const override {
    return thevenin_mpp(*this, source_.voc);
  }

 public:

 private:
  std::string name_;
  Params params_;
  TheveninSource source_;
};

/// Generic rectified AC/DC input (> 5 V), as accepted by the Microstrain
/// EH-Link. Availability is keyed to machinery being energized, proxied by
/// the vibration channel exceeding a threshold (documented substitution).
class AcDcSource final : public Harvester {
 public:
  struct Params {
    Volts rectified_voc{8.0};
    Ohms internal_resistance{200.0};
    MetersPerSecondSquared machinery_threshold{0.5};
  };

  AcDcSource(std::string name, Params params);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] HarvesterKind kind() const override { return HarvesterKind::kAcDc; }
  [[nodiscard]] Amps current_at(Volts v) const override;
  [[nodiscard]] Volts open_circuit_voltage() const override;
  [[nodiscard]] std::optional<TheveninSource> thevenin_equivalent()
      const override {
    if (!energized_) return TheveninSource{Volts{0.0}, Ohms{1.0}};
    return TheveninSource{params_.rectified_voc, params_.internal_resistance};
  }

 protected:
  void do_set_conditions(const env::AmbientConditions& c) override;
  [[nodiscard]] OperatingPoint compute_mpp() const override;

 public:

 private:
  std::string name_;
  Params params_;
  bool energized_{false};
};

}  // namespace msehsim::harvest
