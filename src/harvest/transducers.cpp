#include "harvest/transducers.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/error.hpp"

namespace msehsim::harvest {

// Linear-transducer MPPs use the shared harvest::thevenin_mpp (inline in
// harvester.hpp, next to the hot overrides of Teg / VibrationHarvester /
// RfHarvester).

// ---------------------------------------------------------------------------
// PvPanel
// ---------------------------------------------------------------------------

PvPanel::PvPanel(std::string name, Params params)
    : name_(std::move(name)), params_(params) {
  require_spec(params_.voc_stc.value() > 0.0, "PV Voc must be > 0");
  require_spec(params_.isc_stc.value() > 0.0, "PV Isc must be > 0");
  require_spec(params_.diode_ideality >= 1.0 && params_.diode_ideality <= 2.5,
               "PV diode ideality out of physical range [1, 2.5]");
  require_spec(params_.series_cells >= 1, "PV needs at least one cell");
  require_spec(params_.lux_per_wm2 > 0.0, "PV lux conversion must be > 0");
  // Dark saturation current pinned so that I(Voc_stc) = 0 at STC.
  const double vt_total = thermal_voltage();
  saturation_current_ =
      Amps{params_.isc_stc.value() / std::expm1(params_.voc_stc.value() / vt_total)};
}

double PvPanel::thermal_voltage() const {
  constexpr double kVtCell = 0.02585;  // kT/q at 300 K
  return params_.diode_ideality * kVtCell * params_.series_cells;
}

void PvPanel::do_set_conditions(const env::AmbientConditions& c) {
  double g = c.solar_irradiance.value();
  if (params_.indoor) {
    g = c.illuminance.value() / params_.lux_per_wm2 * params_.indoor_derating;
  }
  photo_current_ = Amps{params_.isc_stc.value() * std::max(0.0, g) / 1000.0};
}

Amps PvPanel::current_at(Volts v) const {
  if (v.value() < 0.0) return Amps{0.0};
  const double diode =
      saturation_current_.value() * std::expm1(v.value() / thermal_voltage());
  return Amps{std::max(0.0, photo_current_.value() - diode)};
}

Volts PvPanel::open_circuit_voltage() const {
  if (photo_current_.value() <= 0.0) return Volts{0.0};
  return Volts{thermal_voltage() *
               std::log1p(photo_current_.value() / saturation_current_.value())};
}


OperatingPoint PvPanel::compute_mpp() const {
  if (photo_current_.value() <= 0.0) return OperatingPoint{};
  // dP/dV = 0 on the single-diode curve gives e^x (1+x) = K with x = V/Vt
  // and K = (Iph + I0)/I0; in log form g(x) = x + log1p(x) - ln K = 0,
  // monotone in x. Newton from x0 = ln K (= Voc/Vt) reaches machine
  // precision in a handful of iterations — versus 80 golden-section probes
  // of the exp-heavy curve, which is what made the MPP-yield accounting the
  // hottest path of the whole simulator.
  const double vt = thermal_voltage();
  const double ln_k =
      std::log1p(photo_current_.value() / saturation_current_.value());
  double x = ln_k;
  for (int i = 0; i < 16; ++i) {
    const double g = x + std::log1p(x) - ln_k;
    const double step = g / (1.0 + 1.0 / (1.0 + x));
    x -= step;
    if (x < 0.0) x = 0.0;
    if (std::fabs(step) <= 1e-15 * std::max(1.0, x)) break;
  }
  OperatingPoint mpp;
  mpp.v = Volts{vt * x};
  mpp.i = current_at(mpp.v);
  mpp.p = mpp.v * mpp.i;
  return mpp;
}

OperatingPoint PvPanel::shifted_mpp(Volts shift) const {
  const double s = shift.value();
  if (s <= 0.0) return maximum_power_point();
  if (photo_current_.value() <= 0.0 ||
      open_circuit_voltage().value() <= s)
    return OperatingPoint{};
  // Maximize (u - s) I(u) over the panel voltage u. Stationarity on the
  // single-diode curve gives e^x (1 + x - d) = K with x = u/Vt, d = s/Vt,
  // K = (Iph + I0)/I0 — the same log-domain Newton as compute_mpp with the
  // knee shifted by the diode drop: g(x) = x + log1p(x - d) - ln K.
  const double vt = thermal_voltage();
  const double d = s / vt;
  const double ln_k =
      std::log1p(photo_current_.value() / saturation_current_.value());
  double x = ln_k;  // = Voc/Vt > d here, so g(x0) >= 0 and 1 + x0 - d > 1
  for (int i = 0; i < 16; ++i) {
    const double g = x + std::log1p(x - d) - ln_k;
    const double step = g / (1.0 + 1.0 / (1.0 + x - d));
    x -= step;
    if (x < d) x = d;
    if (std::fabs(step) <= 1e-15 * std::max(1.0, x)) break;
  }
  OperatingPoint mpp;
  mpp.v = Volts{vt * x - s};
  mpp.i = current_at(Volts{vt * x});
  mpp.p = mpp.v * mpp.i;
  return mpp;
}

// ---------------------------------------------------------------------------
// WindTurbine
// ---------------------------------------------------------------------------

WindTurbine::WindTurbine(std::string name, Params params)
    : WindTurbine(std::move(name), params, HarvesterKind::kWind) {}

WindTurbine::WindTurbine(std::string name, Params params, HarvesterKind kind)
    : name_(std::move(name)), params_(params), kind_(kind) {
  require_spec(params_.rotor_area_m2 > 0.0, "turbine rotor area must be > 0");
  require_spec(params_.power_coefficient > 0.0 && params_.power_coefficient < 0.593,
               "turbine Cp must be in (0, Betz limit)");
  require_spec(params_.cut_in.value() >= 0.0, "turbine cut-in must be >= 0");
  require_spec(params_.rated > params_.cut_in, "turbine rated speed must exceed cut-in");
  require_spec(params_.internal_resistance.value() > 0.0,
               "turbine internal resistance must be > 0");
  require_spec(params_.fluid_density > 0.0, "fluid density must be > 0");
}

WindTurbine WindTurbine::water_turbine(std::string name) {
  Params p;
  p.rotor_area_m2 = 0.002;       // small in-pipe rotor
  p.power_coefficient = 0.30;
  p.cut_in = MetersPerSecond{0.3};
  p.rated = MetersPerSecond{3.0};
  p.voc_per_ms = Volts{3.0};
  p.internal_resistance = Ohms{25.0};
  p.fluid_density = 1000.0;      // water
  return WindTurbine(std::move(name), p, HarvesterKind::kWaterFlow);
}

void WindTurbine::do_set_conditions(const env::AmbientConditions& c) {
  latch_speed(kind_ == HarvesterKind::kWaterFlow ? c.water_flow : c.wind_speed);
}

void WindTurbine::latch_speed(MetersPerSecond speed) {
  const double v = std::min(speed.value(), params_.rated.value());
  if (speed < params_.cut_in) {
    available_ = Watts{0.0};
    source_ = TheveninSource{Volts{0.0}, params_.internal_resistance};
    return;
  }
  available_ = Watts{0.5 * params_.fluid_density * params_.rotor_area_m2 *
                     params_.power_coefficient * v * v * v};
  source_ = TheveninSource{params_.voc_per_ms * v, params_.internal_resistance};
}

Amps WindTurbine::current_at(Volts v) const {
  if (available_.value() <= 0.0 || v.value() < 0.0) return Amps{0.0};
  const Amps thevenin = source_.current_at(v);
  if (v.value() <= 0.0) return thevenin;
  // The generator cannot exceed the aerodynamically available power.
  const Amps power_cap = available_ / v;
  return std::min(thevenin, power_cap);
}

Volts WindTurbine::open_circuit_voltage() const {
  return available_.value() > 0.0 ? source_.voc : Volts{0.0};
}


std::optional<TheveninSource> WindTurbine::thevenin_equivalent() const {
  if (available_.value() <= 0.0)
    return TheveninSource{Volts{0.0}, params_.internal_resistance};
  if (source_.max_power().value() <= available_.value()) return source_;
  return std::nullopt;  // aero cap carves a plateau into the curve
}

OperatingPoint WindTurbine::shifted_mpp(Volts shift) const {
  const double s = shift.value();
  if (s <= 0.0) return maximum_power_point();
  const double voc = open_circuit_voltage().value();
  if (voc <= s) return OperatingPoint{};
  const double r = params_.internal_resistance.value();
  // Shifted Thevenin objective (u - s)(Voc - u)/R peaks at (Voc + s)/2; if
  // the aero cap bites, the objective is increasing across the constant-power
  // plateau, so its upper edge is the only other candidate. Evaluate both
  // through the authoritative (capped) curve and keep the better.
  double best_u = std::clamp(0.5 * (voc + s), s, voc);
  double best_p = (best_u - s) * current_at(Volts{best_u}).value();
  const double disc = voc * voc - 4.0 * r * available_.value();
  if (disc > 0.0) {
    const double edge = std::clamp(0.5 * (voc + std::sqrt(disc)), s, voc);
    const double p = (edge - s) * current_at(Volts{edge}).value();
    if (p > best_p) {
      best_p = p;
      best_u = edge;
    }
  }
  OperatingPoint mpp;
  mpp.v = Volts{best_u - s};
  mpp.i = current_at(Volts{best_u});
  mpp.p = mpp.v * mpp.i;
  return mpp;
}

OperatingPoint WindTurbine::compute_mpp() const {
  if (available_.value() <= 0.0 || source_.voc.value() <= 0.0)
    return OperatingPoint{};
  const double voc = source_.voc.value();
  const double r = params_.internal_resistance.value();
  double v_star = 0.5 * voc;
  if (voc * voc / (4.0 * r) > available_.value()) {
    // The aero cap flattens the top of the Thevenin parabola into a plateau
    // of constant power; operate at its upper edge (the highest voltage that
    // still draws the full available power), where generator current equals
    // the cap: (Voc - V) V / R = P_avail.
    const double disc = voc * voc - 4.0 * r * available_.value();
    v_star = 0.5 * (voc + std::sqrt(std::max(0.0, disc)));
  }
  OperatingPoint mpp;
  mpp.v = Volts{v_star};
  mpp.i = current_at(mpp.v);
  mpp.p = mpp.v * mpp.i;
  return mpp;
}

// ---------------------------------------------------------------------------
// Teg
// ---------------------------------------------------------------------------

Teg::Teg(std::string name, Params params) : name_(std::move(name)), params_(params) {
  require_spec(params_.seebeck_per_kelvin.value() > 0.0, "TEG Seebeck must be > 0");
  require_spec(params_.internal_resistance.value() > 0.0,
               "TEG internal resistance must be > 0");
}

// Teg's conditions/curve/MPP overrides are inline in transducers.hpp (hot
// path).

// ---------------------------------------------------------------------------
// VibrationHarvester
// ---------------------------------------------------------------------------

VibrationHarvester::VibrationHarvester(std::string name, Params params,
                                       HarvesterKind kind)
    : name_(std::move(name)), params_(params), kind_(kind) {
  require_spec(kind == HarvesterKind::kPiezo || kind == HarvesterKind::kInductive,
               "VibrationHarvester kind must be piezo or inductive");
  require_spec(params_.proof_mass_kg > 0.0, "proof mass must be > 0");
  require_spec(params_.damping_ratio > 0.0 && params_.damping_ratio < 1.0,
               "damping ratio must be in (0,1)");
  require_spec(params_.resonant_frequency.value() > 0.0, "resonance must be > 0");
  require_spec(params_.optimal_voltage.value() > 0.0, "optimal voltage must be > 0");
  require_spec(params_.transduction_efficiency > 0.0 &&
                   params_.transduction_efficiency <= 1.0,
               "transduction efficiency must be in (0,1]");
}

VibrationHarvester VibrationHarvester::piezo(std::string name, Params params) {
  return VibrationHarvester(std::move(name), params, HarvesterKind::kPiezo);
}

VibrationHarvester VibrationHarvester::electromagnetic(std::string name, Params params) {
  params.optimal_voltage = Volts{1.2};  // EM transducers are low-voltage
  params.transduction_efficiency = 0.5;
  return VibrationHarvester(std::move(name), params, HarvesterKind::kInductive);
}

// VibrationHarvester's conditions/curve/MPP overrides are inline in
// transducers.hpp (hot path).

// ---------------------------------------------------------------------------
// RfHarvester
// ---------------------------------------------------------------------------

RfHarvester::RfHarvester(std::string name, Params params)
    : name_(std::move(name)), params_(params) {
  require_spec(params_.aperture_m2 > 0.0, "RF aperture must be > 0");
  require_spec(params_.peak_efficiency > 0.0 && params_.peak_efficiency <= 1.0,
               "RF efficiency must be in (0,1]");
  require_spec(params_.efficiency_knee.value() > 0.0, "RF efficiency knee must be > 0");
  require_spec(params_.optimal_voltage.value() > 0.0, "RF optimal voltage must be > 0");
}

// RfHarvester's conditions/curve/MPP overrides are inline in transducers.hpp
// (hot path).

// ---------------------------------------------------------------------------
// AcDcSource
// ---------------------------------------------------------------------------

AcDcSource::AcDcSource(std::string name, Params params)
    : name_(std::move(name)), params_(params) {
  require_spec(params_.rectified_voc.value() > 5.0,
               "EH-Link class AC/DC input requires > 5 V");
  require_spec(params_.internal_resistance.value() > 0.0,
               "AC/DC internal resistance must be > 0");
}

void AcDcSource::do_set_conditions(const env::AmbientConditions& c) {
  energized_ = c.vibration_rms >= params_.machinery_threshold;
}

Amps AcDcSource::current_at(Volts v) const {
  if (!energized_ || v.value() < 0.0) return Amps{0.0};
  return TheveninSource{params_.rectified_voc, params_.internal_resistance}.current_at(v);
}

Volts AcDcSource::open_circuit_voltage() const {
  return energized_ ? params_.rectified_voc : Volts{0.0};
}


OperatingPoint AcDcSource::compute_mpp() const {
  if (!energized_) return OperatingPoint{};
  return thevenin_mpp(*this, params_.rectified_voc);
}

}  // namespace msehsim::harvest
