// Harvester (transducer) interface.
//
// Every harvester exposes a DC-side I-V curve — current available at a given
// terminal voltage under the present ambient conditions (any internal
// AC rectification is folded into the curve). Input power conditioning
// (src/power) picks the operating point on this curve: an MPPT controller
// tracks the knee, a fixed-point circuit sits where it was told to
// (the System A vs System B contrast in Sec. II.1 of the survey).
//
// maximum_power_point() is memoized on the base class, keyed on the last
// conditions applied through set_conditions(): re-applying identical
// conditions (or re-querying within one step) reuses the cached operating
// point, while any changed field recomputes. set_conditions() is therefore a
// non-virtual template-method: subclasses latch state in do_set_conditions()
// and call invalidate_mpp_cache() whenever their curve changes for reasons
// the conditions key cannot see (fault-mode transitions in
// fault::FaultyHarvester). A Harvester is NOT thread-safe — the cache is
// plain mutable state; concurrent simulations must each own their harvesters
// (see campaign::Campaign, which builds one platform per job).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/units.hpp"
#include "env/conditions.hpp"
#include "obs/trace.hpp"

namespace msehsim::harvest {

/// Energy source types appearing in Table I of the survey.
enum class HarvesterKind {
  kPhotovoltaic,   ///< "Light"
  kWind,           ///< "Wind"
  kThermoelectric, ///< "Thermal"
  kPiezo,          ///< "Vibration" / "Piezo/Mech"
  kInductive,      ///< electromagnetic vibration (EH-Link)
  kRf,             ///< "Radio"
  kWaterFlow,      ///< "Water Flow" (MPWiNode)
  kAcDc,           ///< "General AC/DC > 5V" (EH-Link)
};

[[nodiscard]] std::string_view to_string(HarvesterKind kind);

/// A point on an I-V curve.
struct OperatingPoint {
  Volts v{0.0};
  Amps i{0.0};
  Watts p{0.0};
};

/// Thevenin-equivalent DC source: the workhorse electrical abstraction for
/// rectified transducers. Maximum power Voc^2/(4R) is reached at Voc/2.
struct TheveninSource {
  Volts voc{0.0};
  Ohms r{1.0};

  [[nodiscard]] Amps current_at(Volts v) const {
    if (v >= voc || r.value() <= 0.0) return Amps{0.0};
    return (voc - v) / r;
  }
  [[nodiscard]] Watts max_power() const {
    return Watts{voc.value() * voc.value() / (4.0 * r.value())};
  }
};

class Harvester {
 public:
  virtual ~Harvester() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual HarvesterKind kind() const = 0;

  /// Latches the ambient conditions for the current timestep. Non-virtual:
  /// normalizes NaN channels to +0.0 (a NaN key never equals itself, so it
  /// would defeat the memo and poison the curve — see env::sanitized),
  /// manages the MPP cache key, then dispatches to do_set_conditions().
  ///
  /// Defined inline (batch-friendly query path): when called through a
  /// pointer to a final subclass — as the batched lane kernel's typed chain
  /// step does — the do_set_conditions dispatch devirtualizes.
  void set_conditions(const env::AmbientConditions& c) {
    const env::AmbientConditions clean = env::sanitized(c);
    if (!mpp_key_set_ || !(clean == mpp_key_)) {
      invalidate_mpp_cache();
      mpp_key_ = clean;
      mpp_key_set_ = true;
    }
    do_set_conditions(clean);
  }

  /// DC current the harvester sources into terminal voltage @p v under the
  /// latched conditions. Non-negative (input conditioning always includes
  /// reverse-blocking, Sec. II.1); zero at or above open-circuit voltage.
  [[nodiscard]] virtual Amps current_at(Volts v) const = 0;

  /// Open-circuit voltage under the latched conditions.
  [[nodiscard]] virtual Volts open_circuit_voltage() const = 0;

  /// Power delivered into terminal voltage @p v.
  [[nodiscard]] Watts power_at(Volts v) const { return v * current_at(v); }

  /// True maximum power point under the latched conditions (numeric oracle;
  /// MPPT controllers in src/power approximate this online). Memoized per
  /// applied conditions; the cached point is byte-identical to a fresh
  /// compute_mpp() because identical conditions define an identical curve.
  ///
  /// Defined inline (batch-friendly query path): the memo probe costs a
  /// flag check instead of a function call, and through a final-subclass
  /// pointer the compute_mpp miss path becomes a direct call.
  [[nodiscard]] OperatingPoint maximum_power_point() const {
    if (mpp_cache_enabled() && mpp_valid_) {
      ++mpp_hits_;
      return mpp_cache_;
    }
    return recompute_mpp();
  }

  /// Exact Thevenin equivalent of the current curve under the latched
  /// conditions, when the curve is exactly linear (TEG, vibration, RF,
  /// AC/DC, an uncapped turbine, and their fault wrappers). nullopt means
  /// "not representable" (PV diode knee, a power-capped turbine). Composite
  /// harvesters use this to solve their own MPP in closed form region by
  /// region instead of searching the summed curve.
  [[nodiscard]] virtual std::optional<TheveninSource> thevenin_equivalent()
      const {
    return std::nullopt;
  }

  /// Maximum of (u - shift) * I(u) over the source voltage u — the operating
  /// point a diode-OR combiner would pick were this source alone conducting
  /// behind a diode of forward drop @p shift. Reported at the *combiner*
  /// terminal: v = u - shift, i = I(u), p = v * i. The default runs the
  /// golden-section fallback; transducers with a closed-form knee override
  /// it (PvPanel: shifted log-domain Newton). shift = 0 reduces to the
  /// plain MPP.
  [[nodiscard]] virtual OperatingPoint shifted_mpp(Volts shift) const;

  /// Monotone count of curve changes: bumped whenever the latched conditions
  /// change and whenever invalidate_mpp_cache() fires (fault-mode
  /// transitions, intermittent flips, hot-swaps). Composites such as
  /// DiodeOrCombiner watch their sources' revisions to drop their own cached
  /// MPP on changes their conditions key cannot see.
  [[nodiscard]] std::uint64_t curve_revision() const { return curve_revision_; }

  // ---- MPP cache instrumentation and control ------------------------------

  /// Times maximum_power_point() was answered from the cache / recomputed.
  [[nodiscard]] std::uint64_t mpp_cache_hits() const { return mpp_hits_; }
  [[nodiscard]] std::uint64_t mpp_recomputes() const { return mpp_recomputes_; }

  /// Process-wide cache kill-switch for determinism audits: with the cache
  /// disabled every maximum_power_point() call recomputes. Results must be
  /// byte-identical either way (the fault layer's replay contract). Toggle
  /// only while no simulation is running; the flag is read (not written) by
  /// concurrent campaign workers.
  static void set_mpp_cache_enabled(bool enabled);
  [[nodiscard]] static bool mpp_cache_enabled();

 protected:
  /// Subclass hook: latch whatever internal curve state @p c implies.
  virtual void do_set_conditions(const env::AmbientConditions& c) = 0;

  /// Computes the MPP from scratch. The default runs a golden-section search
  /// over power_at() on [0, Voc]; concrete transducers override with exact
  /// closed-form or Newton solutions on their own curve (same extremum, no
  /// 80-iteration search on the hot path).
  [[nodiscard]] virtual OperatingPoint compute_mpp() const;

  /// Drops the cached MPP. For curve changes invisible to the conditions
  /// key — fault-mode transitions, hot-swapped internals.
  void invalidate_mpp_cache() const {
    mpp_valid_ = false;
    ++curve_revision_;
  }

 private:
  /// Cold half of maximum_power_point(): span-sampled solve + cache fill.
  /// Inline: conditions change every step in trace-driven runs, so this IS
  /// the per-lane-per-step path, and inlining it at a final-subclass call
  /// site devirtualizes (and typically inlines) the compute_mpp solve too.
  [[nodiscard]] OperatingPoint recompute_mpp() const {
    OBS_SPAN_SAMPLED("harvest.mpp_solve", "harvest");
    const OperatingPoint mpp = compute_mpp();
    ++mpp_recomputes_;
    if (mpp_cache_enabled()) {
      mpp_cache_ = mpp;
      mpp_valid_ = true;
    }
    return mpp;
  }

  mutable OperatingPoint mpp_cache_;
  mutable bool mpp_valid_{false};
  mutable std::uint64_t curve_revision_{0};
  mutable std::uint64_t mpp_hits_{0};
  mutable std::uint64_t mpp_recomputes_{0};
  bool mpp_key_set_{false};
  env::AmbientConditions mpp_key_;
};

/// Exact MPP of a plain Thevenin curve: V* = Voc/2. The operating current is
/// read back through the harvester's public curve so clamps and caps stay
/// authoritative. Inline next to the class so a final subclass's compute_mpp
/// collapses to straight-line math.
[[nodiscard]] inline OperatingPoint thevenin_mpp(const Harvester& h,
                                                 Volts voc) {
  if (voc.value() <= 0.0) return OperatingPoint{};
  OperatingPoint mpp;
  mpp.v = voc * 0.5;
  mpp.i = h.current_at(mpp.v);
  mpp.p = mpp.v * mpp.i;
  return mpp;
}

}  // namespace msehsim::harvest
