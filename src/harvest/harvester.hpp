// Harvester (transducer) interface.
//
// Every harvester exposes a DC-side I-V curve — current available at a given
// terminal voltage under the present ambient conditions (any internal
// AC rectification is folded into the curve). Input power conditioning
// (src/power) picks the operating point on this curve: an MPPT controller
// tracks the knee, a fixed-point circuit sits where it was told to
// (the System A vs System B contrast in Sec. II.1 of the survey).
#pragma once

#include <string>
#include <string_view>

#include "core/units.hpp"
#include "env/conditions.hpp"

namespace msehsim::harvest {

/// Energy source types appearing in Table I of the survey.
enum class HarvesterKind {
  kPhotovoltaic,   ///< "Light"
  kWind,           ///< "Wind"
  kThermoelectric, ///< "Thermal"
  kPiezo,          ///< "Vibration" / "Piezo/Mech"
  kInductive,      ///< electromagnetic vibration (EH-Link)
  kRf,             ///< "Radio"
  kWaterFlow,      ///< "Water Flow" (MPWiNode)
  kAcDc,           ///< "General AC/DC > 5V" (EH-Link)
};

[[nodiscard]] std::string_view to_string(HarvesterKind kind);

/// A point on an I-V curve.
struct OperatingPoint {
  Volts v{0.0};
  Amps i{0.0};
  Watts p{0.0};
};

/// Thevenin-equivalent DC source: the workhorse electrical abstraction for
/// rectified transducers. Maximum power Voc^2/(4R) is reached at Voc/2.
struct TheveninSource {
  Volts voc{0.0};
  Ohms r{1.0};

  [[nodiscard]] Amps current_at(Volts v) const {
    if (v >= voc || r.value() <= 0.0) return Amps{0.0};
    return (voc - v) / r;
  }
  [[nodiscard]] Watts max_power() const {
    return Watts{voc.value() * voc.value() / (4.0 * r.value())};
  }
};

class Harvester {
 public:
  virtual ~Harvester() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual HarvesterKind kind() const = 0;

  /// Latches the ambient conditions for the current timestep.
  virtual void set_conditions(const env::AmbientConditions& c) = 0;

  /// DC current the harvester sources into terminal voltage @p v under the
  /// latched conditions. Non-negative (input conditioning always includes
  /// reverse-blocking, Sec. II.1); zero at or above open-circuit voltage.
  [[nodiscard]] virtual Amps current_at(Volts v) const = 0;

  /// Open-circuit voltage under the latched conditions.
  [[nodiscard]] virtual Volts open_circuit_voltage() const = 0;

  /// Power delivered into terminal voltage @p v.
  [[nodiscard]] Watts power_at(Volts v) const { return v * current_at(v); }

  /// True maximum power point under the latched conditions (numeric oracle;
  /// MPPT controllers in src/power approximate this online).
  [[nodiscard]] OperatingPoint maximum_power_point() const;
};

}  // namespace msehsim::harvest
