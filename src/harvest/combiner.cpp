#include "harvest/combiner.hpp"

#include <algorithm>
#include <functional>

#include "core/error.hpp"

namespace msehsim::harvest {

DiodeOrCombiner::DiodeOrCombiner(std::string name,
                                 std::vector<std::unique_ptr<Harvester>> sources,
                                 Volts diode_drop)
    : name_(std::move(name)), sources_(std::move(sources)), diode_drop_(diode_drop) {
  require_spec(!sources_.empty(), "DiodeOrCombiner needs at least one source");
  for (const auto& s : sources_)
    require_spec(s != nullptr, "DiodeOrCombiner: null source");
  require_spec(diode_drop_.value() >= 0.0, "diode drop must be >= 0");
}

HarvesterKind DiodeOrCombiner::kind() const {
  return sources_[dominant_source()]->kind();
}

void DiodeOrCombiner::do_set_conditions(const env::AmbientConditions& c) {
  for (auto& s : sources_) s->set_conditions(c);
  std::uint64_t revision = 0;
  for (const auto& s : sources_) revision += s->curve_revision();
  if (revision != sources_revision_) {
    sources_revision_ = revision;
    invalidate_mpp_cache();
  }
}

std::size_t DiodeOrCombiner::dominant_source() const {
  std::size_t best = 0;
  Volts best_voc{-1.0};
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    const Volts voc = sources_[i]->open_circuit_voltage();
    if (voc > best_voc) {
      best_voc = voc;
      best = i;
    }
  }
  return best;
}

Amps DiodeOrCombiner::current_at(Volts v) const {
  if (v.value() < 0.0) return Amps{0.0};
  // Each source sees the combiner terminal plus its diode's drop; reverse
  // bias (source Voc below terminal + drop) conducts nothing. In practice
  // only the strongest source contributes meaningful current, but summing
  // is exact for ideal-diode OR-ing.
  Amps total{0.0};
  for (const auto& s : sources_) total += s->current_at(v + diode_drop_);
  return total;
}

Volts DiodeOrCombiner::open_circuit_voltage() const {
  Volts best{0.0};
  for (const auto& s : sources_) {
    const Volts voc = s->open_circuit_voltage();
    if (voc > best) best = voc;
  }
  return Volts{std::max(0.0, best.value() - diode_drop_.value())};
}

OperatingPoint DiodeOrCombiner::compute_mpp() const {
  const double voc = open_circuit_voltage().value();
  if (voc <= 0.0) return OperatingPoint{};
  const double drop = diode_drop_.value();

  // Conduction cutoffs (terminal voltage above which a source is reverse-
  // blocked) and the Thevenin parameters of the linear sources.
  struct ThevCut {
    double c;  // cutoff Voc_i - drop
    double r;
  };
  std::vector<ThevCut> thevs;
  std::vector<double> cuts;
  std::vector<double> candidates;
  for (const auto& s : sources_) {
    const double c = s->open_circuit_voltage().value() - drop;
    if (c <= 0.0) continue;  // never conducts at a non-negative terminal
    cuts.push_back(c);
    const auto t = s->thevenin_equivalent();
    if (t && t->r.value() > 0.0) {
      thevs.push_back({c, t->r.value()});
    } else {
      // Nonlinear knee: its own closed-form shifted MPP (already reported at
      // the combiner terminal) is the candidate over its dominance region.
      candidates.push_back(
          std::clamp(s->shifted_mpp(diode_drop_).v.value(), 0.0, voc));
    }
  }
  if (cuts.empty()) return OperatingPoint{};
  std::sort(cuts.begin(), cuts.end(), std::greater<>());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  // Sweep the fixed-active-set regions [lo, hi) from the top cutoff down.
  // A source is active throughout a region iff its cutoff >= hi; the
  // Thevenin actives sum to P = v (A - B v) with vertex A / 2B.
  for (std::size_t k = 0; k < cuts.size(); ++k) {
    const double hi = cuts[k];
    const double lo = (k + 1 < cuts.size()) ? cuts[k + 1] : 0.0;
    double a = 0.0;
    double b = 0.0;
    for (const auto& t : thevs) {
      if (t.c >= hi) {
        a += t.c / t.r;
        b += 1.0 / t.r;
      }
    }
    if (b > 0.0) candidates.push_back(std::clamp(a / (2.0 * b), lo, hi));
    candidates.push_back(hi);  // region boundary (a cutoff kink)
  }

  double best_v = 0.0;
  double best_p = 0.0;
  for (const double v : candidates) {
    const double p = power_at(Volts{v}).value();
    if (p > best_p) {
      best_p = p;
      best_v = v;
    }
  }
  OperatingPoint mpp;
  mpp.v = Volts{best_v};
  mpp.i = current_at(mpp.v);
  mpp.p = mpp.v * mpp.i;
  return mpp;
}

}  // namespace msehsim::harvest
