#include "harvest/combiner.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace msehsim::harvest {

DiodeOrCombiner::DiodeOrCombiner(std::string name,
                                 std::vector<std::unique_ptr<Harvester>> sources,
                                 Volts diode_drop)
    : name_(std::move(name)), sources_(std::move(sources)), diode_drop_(diode_drop) {
  require_spec(!sources_.empty(), "DiodeOrCombiner needs at least one source");
  for (const auto& s : sources_)
    require_spec(s != nullptr, "DiodeOrCombiner: null source");
  require_spec(diode_drop_.value() >= 0.0, "diode drop must be >= 0");
}

HarvesterKind DiodeOrCombiner::kind() const {
  return sources_[dominant_source()]->kind();
}

void DiodeOrCombiner::do_set_conditions(const env::AmbientConditions& c) {
  for (auto& s : sources_) s->set_conditions(c);
}

std::size_t DiodeOrCombiner::dominant_source() const {
  std::size_t best = 0;
  Volts best_voc{-1.0};
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    const Volts voc = sources_[i]->open_circuit_voltage();
    if (voc > best_voc) {
      best_voc = voc;
      best = i;
    }
  }
  return best;
}

Amps DiodeOrCombiner::current_at(Volts v) const {
  if (v.value() < 0.0) return Amps{0.0};
  // Each source sees the combiner terminal plus its diode's drop; reverse
  // bias (source Voc below terminal + drop) conducts nothing. In practice
  // only the strongest source contributes meaningful current, but summing
  // is exact for ideal-diode OR-ing.
  Amps total{0.0};
  for (const auto& s : sources_) total += s->current_at(v + diode_drop_);
  return total;
}

Volts DiodeOrCombiner::open_circuit_voltage() const {
  Volts best{0.0};
  for (const auto& s : sources_) {
    const Volts voc = s->open_circuit_voltage();
    if (voc > best) best = voc;
  }
  return Volts{std::max(0.0, best.value() - diode_drop_.value())};
}

}  // namespace msehsim::harvest
