#include "harvest/harvester.hpp"

#include <atomic>

#include "core/solve.hpp"
#include "obs/trace.hpp"

namespace msehsim::harvest {

namespace {
// Relaxed is enough: the flag is configuration, set before simulations run,
// and only read from campaign worker threads.
std::atomic<bool> g_mpp_cache_enabled{true};
}  // namespace

void Harvester::set_mpp_cache_enabled(bool enabled) {
  g_mpp_cache_enabled.store(enabled, std::memory_order_relaxed);
}

bool Harvester::mpp_cache_enabled() {
  return g_mpp_cache_enabled.load(std::memory_order_relaxed);
}

std::string_view to_string(HarvesterKind kind) {
  switch (kind) {
    case HarvesterKind::kPhotovoltaic: return "Light";
    case HarvesterKind::kWind: return "Wind";
    case HarvesterKind::kThermoelectric: return "Thermal";
    case HarvesterKind::kPiezo: return "Vibration";
    case HarvesterKind::kInductive: return "Inductive";
    case HarvesterKind::kRf: return "Radio";
    case HarvesterKind::kWaterFlow: return "Water Flow";
    case HarvesterKind::kAcDc: return "AC/DC";
  }
  return "?";
}

OperatingPoint Harvester::compute_mpp() const {
  const Volts voc = open_circuit_voltage();
  if (voc.value() <= 0.0) return OperatingPoint{};
  const double v_star = golden_max_fn(
      [this](double v) { return power_at(Volts{v}).value(); }, 0.0, voc.value());
  OperatingPoint mpp;
  mpp.v = Volts{v_star};
  mpp.i = current_at(mpp.v);
  mpp.p = mpp.v * mpp.i;
  return mpp;
}

OperatingPoint Harvester::shifted_mpp(Volts shift) const {
  const Volts voc = open_circuit_voltage();
  const double s = shift.value();
  if (voc.value() <= s) return OperatingPoint{};
  // Search over the source voltage u in [s, Voc]; the combiner terminal sees
  // v = u - s while the source conducts I(u).
  const double u_star = golden_max_fn(
      [this, s](double u) {
        return (u - s) * current_at(Volts{u}).value();
      },
      s, voc.value());
  OperatingPoint mpp;
  mpp.v = Volts{u_star - s};
  mpp.i = current_at(Volts{u_star});
  mpp.p = mpp.v * mpp.i;
  return mpp;
}

}  // namespace msehsim::harvest
