#include "harvest/harvester.hpp"

#include "core/solve.hpp"

namespace msehsim::harvest {

std::string_view to_string(HarvesterKind kind) {
  switch (kind) {
    case HarvesterKind::kPhotovoltaic: return "Light";
    case HarvesterKind::kWind: return "Wind";
    case HarvesterKind::kThermoelectric: return "Thermal";
    case HarvesterKind::kPiezo: return "Vibration";
    case HarvesterKind::kInductive: return "Inductive";
    case HarvesterKind::kRf: return "Radio";
    case HarvesterKind::kWaterFlow: return "Water Flow";
    case HarvesterKind::kAcDc: return "AC/DC";
  }
  return "?";
}

OperatingPoint Harvester::maximum_power_point() const {
  const Volts voc = open_circuit_voltage();
  if (voc.value() <= 0.0) return OperatingPoint{};
  const double v_star = golden_max(
      [this](double v) { return power_at(Volts{v}).value(); }, 0.0, voc.value());
  OperatingPoint mpp;
  mpp.v = Volts{v_star};
  mpp.i = current_at(mpp.v);
  mpp.p = mpp.v * mpp.i;
  return mpp;
}

}  // namespace msehsim::harvest
