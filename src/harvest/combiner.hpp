// Diode-OR source combiner.
//
// Several commercial boards (the EH-Link class) do not give every harvester
// its own conditioning chain: the sources are OR-ed through Schottky diodes
// into ONE input. Whichever source presents the highest voltage conducts;
// weaker sources are reverse-blocked and contribute nothing. This is the
// cheap alternative to per-source conditioning — and the reason such boards
// cannot harvest from several sources *simultaneously*, a trade-off the
// survey's per-module architectures exist to avoid.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "harvest/harvester.hpp"

namespace msehsim::harvest {

class DiodeOrCombiner final : public Harvester {
 public:
  /// @p diode_drop forward drop of each OR-ing diode.
  DiodeOrCombiner(std::string name, std::vector<std::unique_ptr<Harvester>> sources,
                  Volts diode_drop = Volts{0.3});

  [[nodiscard]] std::string_view name() const override { return name_; }
  /// Reports the kind of the source currently conducting (or the first
  /// source when idle) — the combiner is electrically one input.
  [[nodiscard]] HarvesterKind kind() const override;

  [[nodiscard]] Amps current_at(Volts v) const override;
  [[nodiscard]] Volts open_circuit_voltage() const override;

  [[nodiscard]] std::size_t source_count() const { return sources_.size(); }
  [[nodiscard]] const Harvester& source(std::size_t i) const {
    return *sources_.at(i);
  }

  /// Index of the source with the highest open-circuit voltage under the
  /// latched conditions (the one that will conduct).
  [[nodiscard]] std::size_t dominant_source() const;

 protected:
  void do_set_conditions(const env::AmbientConditions& c) override;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Harvester>> sources_;
  Volts diode_drop_;
};

}  // namespace msehsim::harvest
