// Diode-OR source combiner.
//
// Several commercial boards (the EH-Link class) do not give every harvester
// its own conditioning chain: the sources are OR-ed through Schottky diodes
// into ONE input. Whichever source presents the highest voltage conducts;
// weaker sources are reverse-blocked and contribute nothing. This is the
// cheap alternative to per-source conditioning — and the reason such boards
// cannot harvest from several sources *simultaneously*, a trade-off the
// survey's per-module architectures exist to avoid.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "harvest/harvester.hpp"

namespace msehsim::harvest {

class DiodeOrCombiner final : public Harvester {
 public:
  /// @p diode_drop forward drop of each OR-ing diode.
  DiodeOrCombiner(std::string name, std::vector<std::unique_ptr<Harvester>> sources,
                  Volts diode_drop = Volts{0.3});

  [[nodiscard]] std::string_view name() const override { return name_; }
  /// Reports the kind of the source currently conducting (or the first
  /// source when idle) — the combiner is electrically one input.
  [[nodiscard]] HarvesterKind kind() const override;

  [[nodiscard]] Amps current_at(Volts v) const override;
  [[nodiscard]] Volts open_circuit_voltage() const override;

  [[nodiscard]] std::size_t source_count() const { return sources_.size(); }
  [[nodiscard]] const Harvester& source(std::size_t i) const {
    return *sources_.at(i);
  }

  /// Index of the source with the highest open-circuit voltage under the
  /// latched conditions (the one that will conduct).
  [[nodiscard]] std::size_t dominant_source() const;

  /// The 80-probe golden-section search over the summed curve that
  /// compute_mpp() used to run — kept public as the numeric cross-check for
  /// the piecewise closed form (tests assert <= 1e-9 relative agreement).
  [[nodiscard]] OperatingPoint golden_section_mpp() const {
    return Harvester::compute_mpp();
  }

 protected:
  void do_set_conditions(const env::AmbientConditions& c) override;

  /// Piecewise closed-form MPP. Between consecutive conduction cutoffs
  /// c_i = Voc_i - drop the active set is fixed; the Thevenin actives sum to
  /// the quadratic P = v (A - B v), whose clamped vertex is exact. Sources
  /// without a Thevenin equivalent (PV knee, capped turbine) contribute
  /// their own closed-form shifted MPP as a candidate. Every candidate is
  /// evaluated through the authoritative current_at() and the best kept — no
  /// per-step iterative search survives.
  [[nodiscard]] OperatingPoint compute_mpp() const override;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Harvester>> sources_;
  Volts diode_drop_;
  // Sum of the sources' curve revisions at the last do_set_conditions():
  // fault transitions inside a source swap its curve without changing the
  // ambient-conditions cache key, so the combiner tracks revisions itself.
  std::uint64_t sources_revision_{0};
};

}  // namespace msehsim::harvest
