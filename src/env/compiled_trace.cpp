#include "env/compiled_trace.hpp"

#include <cmath>
#include <utility>

#include "core/error.hpp"

namespace msehsim::env {

namespace {

/// True only for bit-exact +0.0: eliding -0.0 would swap the sign of a
/// stored zero and could leak into a "-0"-vs-"0" byte difference in a
/// round-trip-exact text report downstream.
bool all_positive_zero(const std::vector<double>& v) {
  for (const double x : v)
    if (x != 0.0 || std::signbit(x)) return false;
  return true;
}

}  // namespace

const std::array<const char*, CompiledTrace::kChannelCount>&
CompiledTrace::channel_names() {
  static const std::array<const char*, kChannelCount> names = {
      "solar_irradiance", "illuminance",    "wind_speed",
      "thermal_gradient", "vibration_rms",  "vibration_freq",
      "rf_power_density", "water_flow"};
  return names;
}

CompiledTrace::CompiledTrace(EnvironmentModel& source, Seconds dt,
                             Seconds duration)
    : dt_(dt), duration_(duration), description_(source.description()) {
  require_spec(dt.value() > 0.0, "CompiledTrace: dt must be > 0");
  require_spec(duration.value() > 0.0, "CompiledTrace: duration must be > 0");
  const auto reserve =
      static_cast<std::size_t>(duration.value() / dt.value()) + 1;
  for (auto& v : owned_) v.reserve(reserve);
  // Exactly core::Simulation's stepping scheme (run_platform starts at
  // now = 0): repeated accumulation, half-step end tolerance. Any deviation
  // here would desynchronize playback from a live run.
  for (Seconds now{0.0}; now + dt * 0.5 < duration; now += dt) {
    const AmbientConditions c = source.advance(now, dt);
    owned_[0].push_back(c.solar_irradiance.value());
    owned_[1].push_back(c.illuminance.value());
    owned_[2].push_back(c.wind_speed.value());
    owned_[3].push_back(c.thermal_gradient.value());
    owned_[4].push_back(c.vibration_rms.value());
    owned_[5].push_back(c.vibration_freq.value());
    owned_[6].push_back(c.rf_power_density.value());
    owned_[7].push_back(c.water_flow.value());
  }
  steps_ = owned_[0].size();
  require_spec(steps_ > 0, "CompiledTrace: zero-step timeline");
  for (std::size_t ch = 0; ch < kChannelCount; ++ch) {
    if (all_positive_zero(owned_[ch])) {
      owned_[ch].clear();
      owned_[ch].shrink_to_fit();
      view_[ch] = nullptr;
    } else {
      view_[ch] = owned_[ch].data();
    }
  }
}

std::shared_ptr<const CompiledTrace> CompiledTrace::compile(
    EnvironmentModel& source, Seconds dt, Seconds duration) {
  return std::make_shared<const CompiledTrace>(source, dt, duration);
}

AmbientConditions CompiledTrace::at(std::size_t step) const {
  require_spec(step < steps_, "CompiledTrace::at: step out of range");
  AmbientConditions c;
  c.solar_irradiance = WattsPerSquareMeter{slot(0, step)};
  c.illuminance = Lux{slot(1, step)};
  c.wind_speed = MetersPerSecond{slot(2, step)};
  c.thermal_gradient = Kelvin{slot(3, step)};
  c.vibration_rms = MetersPerSecondSquared{slot(4, step)};
  c.vibration_freq = Hertz{slot(5, step)};
  c.rf_power_density = WattsPerSquareMeter{slot(6, step)};
  c.water_flow = MetersPerSecond{slot(7, step)};
  return c;
}

std::size_t CompiledTrace::memory_bytes() const {
  if (backing_ != nullptr) return mapped_bytes_;
  std::size_t bytes = 0;
  for (const auto& v : owned_) bytes += v.capacity() * sizeof(double);
  return bytes;
}

int CompiledTrace::stored_channels() const {
  int n = 0;
  for (const auto* v : view_)
    if (v != nullptr) ++n;
  return n;
}

CompiledEnvironment::CompiledEnvironment(
    std::shared_ptr<const CompiledTrace> trace)
    : trace_(std::move(trace)) {
  require_spec(trace_ != nullptr, "CompiledEnvironment needs a trace");
}

AmbientConditions CompiledEnvironment::advance(Seconds now, Seconds dt) {
  if (dt.value() != trace_->dt().value())
    throw SpecError("CompiledEnvironment: dt " + std::to_string(dt.value()) +
                    " does not match compiled dt " +
                    std::to_string(trace_->dt().value()));
  // now is the run's accumulated k-fold sum of dt, so now/dt sits within
  // rounding noise of the integer slot index; round, then wrap for playback
  // past the compiled horizon.
  const auto idx = static_cast<std::size_t>(
      std::llround(now.value() / trace_->dt().value()));
  return trace_->at(idx % trace_->step_count());
}

std::string CompiledEnvironment::description() const {
  return "compiled:" + trace_->description();
}

}  // namespace msehsim::env
