#include "env/compiled_trace.hpp"

#include <cmath>
#include <utility>

#include "core/error.hpp"

namespace msehsim::env {

namespace {

/// True only for bit-exact +0.0: eliding -0.0 would swap the sign of a
/// stored zero and could leak into a "-0"-vs-"0" byte difference in a
/// %.17g report downstream.
bool all_positive_zero(const std::vector<double>& v) {
  for (const double x : v)
    if (x != 0.0 || std::signbit(x)) return false;
  return true;
}

void elide_if_zero(std::vector<double>& v) {
  if (all_positive_zero(v)) {
    v.clear();
    v.shrink_to_fit();
  }
}

}  // namespace

CompiledTrace::CompiledTrace(EnvironmentModel& source, Seconds dt,
                             Seconds duration)
    : dt_(dt), duration_(duration), description_(source.description()) {
  require_spec(dt.value() > 0.0, "CompiledTrace: dt must be > 0");
  require_spec(duration.value() > 0.0, "CompiledTrace: duration must be > 0");
  const auto reserve =
      static_cast<std::size_t>(duration.value() / dt.value()) + 1;
  for (auto* v : {&solar_, &lux_, &wind_, &thermal_, &vib_, &vibf_, &rf_, &water_})
    v->reserve(reserve);
  // Exactly core::Simulation's stepping scheme (run_platform starts at
  // now = 0): repeated accumulation, half-step end tolerance. Any deviation
  // here would desynchronize playback from a live run.
  for (Seconds now{0.0}; now + dt * 0.5 < duration; now += dt) {
    const AmbientConditions c = source.advance(now, dt);
    solar_.push_back(c.solar_irradiance.value());
    lux_.push_back(c.illuminance.value());
    wind_.push_back(c.wind_speed.value());
    thermal_.push_back(c.thermal_gradient.value());
    vib_.push_back(c.vibration_rms.value());
    vibf_.push_back(c.vibration_freq.value());
    rf_.push_back(c.rf_power_density.value());
    water_.push_back(c.water_flow.value());
  }
  steps_ = solar_.size();
  require_spec(steps_ > 0, "CompiledTrace: zero-step timeline");
  for (auto* v : {&solar_, &lux_, &wind_, &thermal_, &vib_, &vibf_, &rf_, &water_})
    elide_if_zero(*v);
}

std::shared_ptr<const CompiledTrace> CompiledTrace::compile(
    EnvironmentModel& source, Seconds dt, Seconds duration) {
  return std::make_shared<const CompiledTrace>(source, dt, duration);
}

AmbientConditions CompiledTrace::at(std::size_t step) const {
  require_spec(step < steps_, "CompiledTrace::at: step out of range");
  AmbientConditions c;
  c.solar_irradiance = WattsPerSquareMeter{slot(solar_, step)};
  c.illuminance = Lux{slot(lux_, step)};
  c.wind_speed = MetersPerSecond{slot(wind_, step)};
  c.thermal_gradient = Kelvin{slot(thermal_, step)};
  c.vibration_rms = MetersPerSecondSquared{slot(vib_, step)};
  c.vibration_freq = Hertz{slot(vibf_, step)};
  c.rf_power_density = WattsPerSquareMeter{slot(rf_, step)};
  c.water_flow = MetersPerSecond{slot(water_, step)};
  return c;
}

std::size_t CompiledTrace::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto* v :
       {&solar_, &lux_, &wind_, &thermal_, &vib_, &vibf_, &rf_, &water_})
    bytes += v->capacity() * sizeof(double);
  return bytes;
}

int CompiledTrace::stored_channels() const {
  int n = 0;
  for (const auto* v :
       {&solar_, &lux_, &wind_, &thermal_, &vib_, &vibf_, &rf_, &water_})
    if (!v->empty()) ++n;
  return n;
}

CompiledEnvironment::CompiledEnvironment(
    std::shared_ptr<const CompiledTrace> trace)
    : trace_(std::move(trace)) {
  require_spec(trace_ != nullptr, "CompiledEnvironment needs a trace");
}

AmbientConditions CompiledEnvironment::advance(Seconds now, Seconds dt) {
  if (dt.value() != trace_->dt().value())
    throw SpecError("CompiledEnvironment: dt " + std::to_string(dt.value()) +
                    " does not match compiled dt " +
                    std::to_string(trace_->dt().value()));
  // now is the run's accumulated k-fold sum of dt, so now/dt sits within
  // rounding noise of the integer slot index; round, then wrap for playback
  // past the compiled horizon.
  const auto idx = static_cast<std::size_t>(
      std::llround(now.value() / trace_->dt().value()));
  return trace_->at(idx % trace_->step_count());
}

std::string CompiledEnvironment::description() const {
  return "compiled:" + trace_->description();
}

}  // namespace msehsim::env
