#include "env/channels.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/error.hpp"

namespace msehsim::env {

namespace {
constexpr double kSecondsPerDay = 86400.0;
constexpr double kDeg2Rad = std::numbers::pi / 180.0;

/// Standard normal CDF via erf.
double phi(double z) { return 0.5 * (1.0 + std::erf(z / std::numbers::sqrt2)); }
}  // namespace

double hour_of_day(Seconds now) {
  double t = std::fmod(now.value(), kSecondsPerDay);
  if (t < 0.0) t += kSecondsPerDay;
  return t / 3600.0;
}

int day_index(Seconds now) {
  return static_cast<int>(std::floor(now.value() / kSecondsPerDay));
}

// ---------------------------------------------------------------------------
// SolarChannel
// ---------------------------------------------------------------------------

SolarChannel::SolarChannel(Params params, std::uint64_t seed)
    : params_(params), rng_(seed, stream_key("solar")) {
  require_spec(params_.clear_sky_peak.value() > 0.0, "solar peak must be > 0");
  require_spec(params_.cloud_attenuation >= 0.0 && params_.cloud_attenuation <= 1.0,
               "cloud attenuation must be in [0,1]");
  require_spec(params_.mean_clear_spell.value() > 0.0 &&
                   params_.mean_cloudy_spell.value() > 0.0,
               "cloud spell durations must be > 0");
}

WattsPerSquareMeter SolarChannel::clear_sky(Seconds now) const {
  // Solar elevation from declination + hour angle (standard astronomical
  // approximation, more than sufficient for energy-availability studies).
  const int doy = params_.day_of_year + day_index(now);
  const double declination =
      -23.44 * kDeg2Rad * std::cos(2.0 * std::numbers::pi * (doy + 10) / 365.0);
  const double hour_angle = (hour_of_day(now) - 12.0) * 15.0 * kDeg2Rad;
  const double lat = params_.latitude_deg * kDeg2Rad;
  const double sin_elev = std::sin(lat) * std::sin(declination) +
                          std::cos(lat) * std::cos(declination) * std::cos(hour_angle);
  if (sin_elev <= 0.0) return WattsPerSquareMeter{0.0};
  // Simple air-mass attenuation of the extraterrestrial beam.
  const double air_mass = 1.0 / std::max(sin_elev, 0.05);
  const double atten = std::pow(0.7, std::pow(air_mass, 0.678));
  return params_.clear_sky_peak * (sin_elev * atten / std::pow(0.7, 1.0));
}

WattsPerSquareMeter SolarChannel::advance(Seconds now, Seconds dt) {
  // Two-state Markov chain with exponential dwell times, discretized.
  const double leave_rate =
      cloudy_ ? 1.0 / params_.mean_cloudy_spell.value()
              : 1.0 / params_.mean_clear_spell.value();
  if (rng_.bernoulli(-std::expm1(-leave_rate * dt.value()))) cloudy_ = !cloudy_;
  const WattsPerSquareMeter base = clear_sky(now);
  return cloudy_ ? base * params_.cloud_attenuation : base;
}

// ---------------------------------------------------------------------------
// IndoorLightChannel
// ---------------------------------------------------------------------------

IndoorLightChannel::IndoorLightChannel(Params params, std::uint64_t seed)
    : params_(params), rng_(seed, stream_key("indoor-light")) {
  require_spec(params_.on_hour < params_.off_hour,
               "indoor light on_hour must precede off_hour");
}

Lux IndoorLightChannel::advance(Seconds now, Seconds dt) {
  (void)dt;
  const int day = day_index(now);
  if (day != cached_day_) {
    cached_day_ = day;
    const bool weekend = (day % 7) >= 5;
    day_active_ = !weekend || rng_.bernoulli(params_.weekend_on_probability);
  }
  const double h = hour_of_day(now);
  const bool lights_on = day_active_ && h >= params_.on_hour && h < params_.off_hour;
  const Lux level = lights_on ? params_.on_level : params_.off_level;
  const double noise = 1.0 + params_.noise_fraction * rng_.normal();
  return Lux{std::max(0.0, level.value() * noise)};
}

// ---------------------------------------------------------------------------
// WindChannel
// ---------------------------------------------------------------------------

WindChannel::WindChannel(Params params, std::uint64_t seed)
    : params_(params), rng_(seed, stream_key("wind")) {
  require_spec(params_.weibull_shape > 0.0, "weibull shape must be > 0");
  require_spec(params_.weibull_scale.value() > 0.0, "weibull scale must be > 0");
  require_spec(params_.correlation_time.value() > 0.0,
               "wind correlation time must be > 0");
  z_ = rng_.normal();
}

MetersPerSecond WindChannel::advance(Seconds now, Seconds dt) {
  // AR(1) latent Gaussian keeps temporal correlation; mapping through the
  // Weibull inverse CDF gives the canonical wind-speed marginal.
  const double rho = std::exp(-dt.value() / params_.correlation_time.value());
  z_ = rho * z_ + std::sqrt(std::max(0.0, 1.0 - rho * rho)) * rng_.normal();
  const double u = std::clamp(phi(z_), 1e-9, 1.0 - 1e-9);
  double speed = params_.weibull_scale.value() *
                 std::pow(-std::log(1.0 - u), 1.0 / params_.weibull_shape);
  // Diurnal modulation peaking mid-afternoon (15:00).
  const double h = hour_of_day(now);
  const double diurnal =
      1.0 + params_.diurnal_amplitude *
                std::cos(2.0 * std::numbers::pi * (h - 15.0) / 24.0);
  speed *= diurnal;
  return MetersPerSecond{std::max(0.0, speed)};
}

// ---------------------------------------------------------------------------
// HvacFlowChannel
// ---------------------------------------------------------------------------

HvacFlowChannel::HvacFlowChannel(Params params, std::uint64_t seed)
    : params_(params), rng_(seed, stream_key("hvac")) {
  require_spec(params_.duct_speed.value() >= 0.0, "HVAC duct speed must be >= 0");
}

MetersPerSecond HvacFlowChannel::advance(Seconds now, Seconds dt) {
  (void)dt;
  const double h = hour_of_day(now);
  if (h < params_.on_hour || h >= params_.off_hour) return MetersPerSecond{0.0};
  const double noise = 1.0 + params_.noise_fraction * rng_.normal();
  return MetersPerSecond{std::max(0.0, params_.duct_speed.value() * noise)};
}

// ---------------------------------------------------------------------------
// ThermalChannel
// ---------------------------------------------------------------------------

ThermalChannel::ThermalChannel(Params params, std::uint64_t seed)
    : params_(params), rng_(seed, stream_key("thermal")) {
  require_spec(params_.mean_on_time.value() > 0.0 && params_.mean_off_time.value() > 0.0,
               "thermal duty times must be > 0");
  require_spec(params_.thermal_time_constant.value() > 0.0,
               "thermal time constant must be > 0");
  gradient_ = params_.gradient_off;
  state_time_left_ = Seconds{rng_.exponential(params_.mean_off_time.value())};
}

Kelvin ThermalChannel::advance(Seconds now, Seconds dt) {
  (void)now;
  state_time_left_ -= dt;
  if (state_time_left_.value() <= 0.0) {
    on_ = !on_;
    const double mean = on_ ? params_.mean_on_time.value() : params_.mean_off_time.value();
    state_time_left_ = Seconds{rng_.exponential(mean)};
  }
  const Kelvin target = on_ ? params_.gradient_on : params_.gradient_off;
  const double alpha = 1.0 - std::exp(-dt.value() / params_.thermal_time_constant.value());
  gradient_ += (target - gradient_) * alpha;
  return gradient_;
}

// ---------------------------------------------------------------------------
// VibrationChannel
// ---------------------------------------------------------------------------

VibrationChannel::VibrationChannel(Params params, std::uint64_t seed)
    : params_(params), rng_(seed, stream_key("vibration")) {
  require_spec(params_.base_frequency.value() > 0.0, "vibration frequency must be > 0");
  state_time_left_ = Seconds{rng_.exponential(params_.mean_off_time.value())};
}

VibrationChannel::Sample VibrationChannel::advance(Seconds now, Seconds dt) {
  (void)now;
  state_time_left_ -= dt;
  if (state_time_left_.value() <= 0.0) {
    on_ = !on_;
    const double mean = on_ ? params_.mean_on_time.value() : params_.mean_off_time.value();
    state_time_left_ = Seconds{rng_.exponential(mean)};
  }
  const auto amplitude = on_ ? params_.amplitude_on : params_.amplitude_off;
  const double jitter = 1.0 + params_.frequency_jitter * rng_.normal();
  return Sample{amplitude, Hertz{params_.base_frequency.value() * jitter}};
}

// ---------------------------------------------------------------------------
// RfChannel
// ---------------------------------------------------------------------------

RfChannel::RfChannel(Params params, std::uint64_t seed)
    : params_(params), rng_(seed, stream_key("rf")) {
  require_spec(params_.mean_burst_interval.value() > 0.0 &&
                   params_.mean_burst_duration.value() > 0.0,
               "RF burst timing must be > 0");
}

WattsPerSquareMeter RfChannel::advance(Seconds now, Seconds dt) {
  (void)now;
  if (!initialized_) {
    next_burst_in_ = Seconds{rng_.exponential(params_.mean_burst_interval.value())};
    initialized_ = true;
  }
  if (burst_time_left_.value() > 0.0) {
    burst_time_left_ -= dt;
  } else {
    next_burst_in_ -= dt;
    if (next_burst_in_.value() <= 0.0) {
      burst_time_left_ = Seconds{rng_.exponential(params_.mean_burst_duration.value())};
      next_burst_in_ = Seconds{rng_.exponential(params_.mean_burst_interval.value())};
    }
  }
  return burst_time_left_.value() > 0.0
             ? params_.background + params_.burst_level
             : params_.background;
}

// ---------------------------------------------------------------------------
// WaterFlowChannel
// ---------------------------------------------------------------------------

WaterFlowChannel::WaterFlowChannel(Params params, std::uint64_t seed)
    : params_(params), rng_(seed, stream_key("waterflow")) {
  require_spec(params_.flow_speed.value() >= 0.0, "water flow speed must be >= 0");
  require_spec(params_.window_duration.value() > 0.0,
               "irrigation window duration must be > 0");
}

MetersPerSecond WaterFlowChannel::advance(Seconds now, Seconds dt) {
  (void)dt;
  const double h = hour_of_day(now);
  const double window_hours = params_.window_duration.value() / 3600.0;
  for (const double start : params_.window_start_hours) {
    if (h >= start && h < start + window_hours) {
      const double noise = 1.0 + params_.noise_fraction * rng_.normal();
      return MetersPerSecond{std::max(0.0, params_.flow_speed.value() * noise)};
    }
  }
  return MetersPerSecond{0.0};
}

}  // namespace msehsim::env
