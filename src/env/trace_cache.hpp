// Persistent on-disk cache of CompiledTrace snapshots.
//
// Campaign grids re-run constantly during parameter sweeps and CI, and every
// cold start re-synthesizes the same (scenario, seed) ambient timelines the
// previous run already compiled. A TraceCache persists each compiled
// structure-of-arrays snapshot to a versioned binary file and, on the next
// run, memory-maps it read-only instead of re-synthesizing — the mapped
// doubles are the exact bytes the compiler produced, so playback (and
// therefore every downstream report) is byte-identical to a live synthesis.
//
// File format (little-endian, the only byte order this simulator targets):
//
//   [0,  8)  magic "MSEHTRC1"
//   [8, 12)  u32 format version (kFormatVersion)
//   [12,16)  u32 channel mask (bit i = channel i present, in
//            CompiledTrace::channel_names() order; elided channels stay
//            elided on disk)
//   [16,24)  u64 key hash — FNV-1a over the full invalidation key, see
//            key_hash(); must match the probe's expectation
//   [24,32)  u64 step count
//   [32,40)  f64 dt      (exact bit pattern)
//   [40,48)  f64 duration
//   [48,52)  u32 description length
//   [52,56)  u32 payload offset — 8-byte-aligned file offset of the first
//            channel array (mmap bases are page-aligned, so every double
//            load from the mapping stays aligned)
//   [56,64)  u64 payload bytes (= popcount(mask) * steps * 8)
//   [64, 64 + desc_len)           description string
//   [payload offset, + payload)   present channels' doubles, ascending bit
//
// Every entry is written atomically (temp file + rename) so a concurrent
// reader never sees a half-written file. Every validation failure on load —
// short file, wrong magic, version skew, key-hash mismatch, size mismatch —
// is a silent miss: the caller falls back to live synthesis and the stats
// record the miss. A corrupt cache can cost time, never correctness.
//
// Invalidation is by key: the hash covers the library version, the format
// version, the channel schema, the scenario id, the seed, and the exact bit
// patterns of dt and duration. Anything that could change the synthesized
// bytes must be part of the scenario id (the cache cannot see inside an
// EnvironmentFactory), so use one cache directory per campaign definition —
// or bump the scenario name when its generator recipe changes.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/units.hpp"
#include "env/compiled_trace.hpp"

namespace msehsim::env {

/// Identity of one cache entry. `scenario` is the stable scenario id (the
/// campaign uses Scenario::name); the rest pins the compilation request.
struct TraceCacheKey {
  std::string scenario;
  std::uint64_t seed{0};
  Seconds dt{1.0};
  Seconds duration{0.0};
};

/// Monotone counters, surfaced by campaign::Campaign::metrics() as
/// trace_cache.{hits,misses,evictions,bytes_mapped}.
struct TraceCacheStats {
  std::uint64_t hits{0};        ///< loads served from a mapped file
  std::uint64_t misses{0};      ///< absent entries + every validation failure
  std::uint64_t evictions{0};   ///< entries removed to respect max_bytes
  std::uint64_t bytes_mapped{0};///< total bytes mapped across all hits
};

/// Thread-safe (internally locked) persistent store of compiled traces.
/// Directory-backed: one `<key-hash>.mtrc` file per entry, created on
/// demand. All I/O failures degrade to cache misses / dropped stores.
class TraceCache {
 public:
  /// @p max_bytes caps the directory's total entry size; 0 means unbounded.
  /// After each store, oldest-mtime entries are evicted until under the cap.
  explicit TraceCache(std::string dir, std::uint64_t max_bytes = 0);

  /// Probes for @p key. Returns a read-only memory-mapped CompiledTrace on
  /// a valid hit, nullptr on any miss (absent, unreadable, or failing any
  /// header/size/hash validation).
  [[nodiscard]] std::shared_ptr<const CompiledTrace> load(
      const TraceCacheKey& key);

  /// Persists @p trace under @p key (atomic temp + rename), then enforces
  /// max_bytes. Best-effort: failures leave the cache unchanged and are not
  /// errors. Mapped traces round-trip unchanged.
  void store(const TraceCacheKey& key, const CompiledTrace& trace);

  [[nodiscard]] TraceCacheStats stats() const;

  /// The file a key maps to (exposed for corruption tests and tooling).
  [[nodiscard]] std::string entry_path(const TraceCacheKey& key) const;

  /// FNV-1a 64-bit over the full invalidation key (library version, format
  /// version, channel schema, scenario id, seed, dt/duration bit patterns).
  [[nodiscard]] static std::uint64_t key_hash(const TraceCacheKey& key);

  [[nodiscard]] const std::string& dir() const { return dir_; }

  static constexpr std::uint32_t kFormatVersion = 1;

 private:
  /// Enforces max_bytes (oldest-mtime first) and reaps orphaned temps.
  /// Called after every store, so a long-lived process keeps its cache
  /// directory clean without reopening it.
  void evict_over_cap();
  /// Removes stale `*.tmp.*` leftovers from crashed writers (age-gated so a
  /// live writer in another process is never raced). Called on open and
  /// from every eviction pass.
  void sweep_orphaned_temps();

  std::string dir_;
  std::uint64_t max_bytes_;
  mutable std::mutex mu_;  ///< guards stats_ only; file ops are atomic
  TraceCacheStats stats_;
};

}  // namespace msehsim::env
