// Compiled ambient traces: synthesize once, replay everywhere.
//
// Profiling campaigns (DESIGN.md §8) showed that after the MPP work was
// cached, the next per-step cost left in a grid job was the environment:
// every job under one (scenario, env-seed) pair re-synthesizes the *same*
// AmbientConditions timeline through up to eight optional virtual channels,
// each burning transcendentals and RNG draws per step. A CompiledTrace is
// the EnHANTs-style answer — an immutable, structure-of-arrays snapshot of
// the full timeline, compiled once per (scenario, env-seed, dt, duration)
// and shared read-only across every platform variant's job, with a
// per-job CompiledEnvironment cursor for playback that is O(1) per step
// and dispatches through zero virtual channels.
//
// A trace owns its channel arrays when freshly compiled, or views them
// inside a read-only memory mapping when loaded from the persistent
// env::TraceCache (trace_cache.hpp) — playback is byte-identical either
// way, because both paths hold the exact doubles the source produced.
//
// Determinism contract: compilation replays exactly the stepping scheme of
// systems::run_platform (now accumulated from zero by repeated += dt, one
// advance(now, dt) per step), and playback returns the stored doubles
// verbatim, so a run over a CompiledEnvironment is byte-identical to a run
// over the freshly synthesized source environment.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "env/conditions.hpp"
#include "env/environment.hpp"

namespace msehsim::env {

/// Immutable structure-of-arrays snapshot of a scenario's ambient timeline,
/// one slot per dt step. Channels that are identically +0.0 over the whole
/// timeline are elided (their array is dropped and playback reads zero), so
/// a two-channel outdoor site does not pay eight arrays of storage.
class CompiledTrace {
 public:
  /// One array per AmbientConditions field, in declaration order. This is
  /// the channel schema the TraceCache hashes into its invalidation key: a
  /// new field means a new schema means every old cache entry misses.
  static constexpr int kChannelCount = 8;
  [[nodiscard]] static const std::array<const char*, kChannelCount>&
  channel_names();

  /// Compiles @p source over [0, duration) at @p dt, mutating the source's
  /// generator state exactly as a live run would.
  CompiledTrace(EnvironmentModel& source, Seconds dt, Seconds duration);

  /// Convenience: compile into the shared_ptr form campaign jobs consume.
  static std::shared_ptr<const CompiledTrace> compile(EnvironmentModel& source,
                                                      Seconds dt,
                                                      Seconds duration);

  // view_ points into owned_ (or a mapping); copying/moving would dangle it.
  // Traces live behind shared_ptr<const CompiledTrace> anyway.
  CompiledTrace(const CompiledTrace&) = delete;
  CompiledTrace& operator=(const CompiledTrace&) = delete;

  [[nodiscard]] std::size_t step_count() const { return steps_; }
  [[nodiscard]] Seconds dt() const { return dt_; }
  [[nodiscard]] Seconds duration() const { return duration_; }
  [[nodiscard]] const std::string& description() const { return description_; }

  /// Conditions of slot @p step (elided channels read +0.0).
  [[nodiscard]] AmbientConditions at(std::size_t step) const;

  /// Bytes held by the channel arrays after zero-channel elision (owned
  /// traces), or the size of the read-only mapping (cache-loaded traces).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Channels that survived elision (diagnostics / tests).
  [[nodiscard]] int stored_channels() const;

  /// True when the arrays live in a TraceCache memory mapping rather than
  /// owned vectors.
  [[nodiscard]] bool mapped() const { return backing_ != nullptr; }

  /// Channel @p ch's step_count() doubles, or nullptr when elided. The
  /// serialization surface used by env::TraceCache.
  [[nodiscard]] const double* channel(int ch) const {
    return view_[static_cast<std::size_t>(ch)];
  }

 private:
  friend class TraceCache;
  CompiledTrace() = default;  // mapped-construction path (TraceCache::load)

  [[nodiscard]] double slot(int ch, std::size_t i) const {
    const double* v = view_[static_cast<std::size_t>(ch)];
    return v == nullptr ? 0.0 : v[i];
  }

  Seconds dt_{1.0};
  Seconds duration_{0.0};
  std::size_t steps_{0};
  std::string description_;
  /// Owned storage for freshly compiled traces (all empty when mapped).
  std::array<std::vector<double>, kChannelCount> owned_{};
  /// Per-channel data pointer: into owned_ or into the mapping; nullptr for
  /// an elided channel.
  std::array<const double*, kChannelCount> view_{};
  /// Keep-alive for the read-only file mapping backing view_ (mapped path).
  std::shared_ptr<const void> backing_;
  std::size_t mapped_bytes_{0};
};

/// Lightweight playback cursor over a shared CompiledTrace. Each campaign
/// job owns its own cursor, so read-only sharing of the snapshot keeps the
/// isolation-by-construction model intact. Playback wraps modulo the
/// compiled duration (like TraceEnvironment), so a trace compiled for one
/// loop can also drive longer exploratory runs.
class CompiledEnvironment final : public EnvironmentModel {
 public:
  explicit CompiledEnvironment(std::shared_ptr<const CompiledTrace> trace);

  /// @p dt must equal the compiled dt — a mismatched step would silently
  /// resample the timeline and break the byte-identity contract.
  AmbientConditions advance(Seconds now, Seconds dt) override;
  [[nodiscard]] std::string description() const override;

  [[nodiscard]] const CompiledTrace& trace() const { return *trace_; }

 private:
  std::shared_ptr<const CompiledTrace> trace_;
};

}  // namespace msehsim::env
