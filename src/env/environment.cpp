#include "env/environment.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace msehsim::env {

Environment::Environment(std::uint64_t seed, std::string description)
    : seed_(seed), description_(std::move(description)) {}

Environment& Environment::with_solar(SolarChannel::Params p) {
  solar_.emplace(p, seed_ ^ stream_key("ch.solar"));
  return *this;
}
Environment& Environment::with_indoor_light(IndoorLightChannel::Params p) {
  indoor_light_.emplace(p, seed_ ^ stream_key("ch.lux"));
  return *this;
}
Environment& Environment::with_wind(WindChannel::Params p) {
  wind_.emplace(p, seed_ ^ stream_key("ch.wind"));
  return *this;
}
Environment& Environment::with_hvac_flow(HvacFlowChannel::Params p) {
  hvac_.emplace(p, seed_ ^ stream_key("ch.hvac"));
  return *this;
}
Environment& Environment::with_thermal(ThermalChannel::Params p) {
  thermal_.emplace(p, seed_ ^ stream_key("ch.thermal"));
  return *this;
}
Environment& Environment::with_vibration(VibrationChannel::Params p) {
  vibration_.emplace(p, seed_ ^ stream_key("ch.vib"));
  return *this;
}
Environment& Environment::with_rf(RfChannel::Params p) {
  rf_.emplace(p, seed_ ^ stream_key("ch.rf"));
  return *this;
}
Environment& Environment::with_water_flow(WaterFlowChannel::Params p) {
  water_.emplace(p, seed_ ^ stream_key("ch.water"));
  return *this;
}

AmbientConditions Environment::advance(Seconds now, Seconds dt) {
  AmbientConditions c;
  if (solar_) c.solar_irradiance = solar_->advance(now, dt);
  if (indoor_light_) c.illuminance = indoor_light_->advance(now, dt);
  if (wind_) c.wind_speed = wind_->advance(now, dt);
  if (hvac_) {
    // Indoor flow adds to (usually zero) outdoor wind at the same port.
    c.wind_speed += hvac_->advance(now, dt);
  }
  if (thermal_) c.thermal_gradient = thermal_->advance(now, dt);
  if (vibration_) {
    const auto v = vibration_->advance(now, dt);
    c.vibration_rms = v.rms;
    c.vibration_freq = v.frequency;
  }
  if (rf_) c.rf_power_density = rf_->advance(now, dt);
  if (water_) c.water_flow = water_->advance(now, dt);
  return c;
}

Environment Environment::outdoor(std::uint64_t seed) {
  Environment e(seed, "outdoor (sun + wind)");
  e.with_solar({}).with_wind({});
  return e;
}

Environment Environment::indoor_industrial(std::uint64_t seed) {
  Environment e(seed, "indoor industrial (light + HVAC + thermal + vibration + RF)");
  e.with_indoor_light({}).with_hvac_flow({}).with_thermal({}).with_vibration({}).with_rf(
      {});
  return e;
}

Environment Environment::agricultural(std::uint64_t seed) {
  Environment e(seed, "agricultural (sun + wind + irrigation flow)");
  e.with_solar({}).with_wind({}).with_water_flow({});
  return e;
}

Environment Environment::office(std::uint64_t seed) {
  Environment e(seed, "office (light + RF)");
  e.with_indoor_light({}).with_rf({});
  return e;
}

// ---------------------------------------------------------------------------
// TraceEnvironment
// ---------------------------------------------------------------------------

TraceEnvironment::TraceEnvironment(CsvData trace, std::string description)
    : trace_(std::move(trace)), description_(std::move(description)) {
  require_spec(!trace_.rows.empty(), "TraceEnvironment: empty trace");
  auto find = [this](const char* name) -> int {
    for (std::size_t i = 0; i < trace_.headers.size(); ++i)
      if (trace_.headers[i] == name) return static_cast<int>(i);
    return -1;
  };
  col_time_ = find("time");
  require_spec(col_time_ >= 0, "TraceEnvironment: trace needs a 'time' column");
  col_solar_ = find("solar_irradiance");
  col_lux_ = find("illuminance");
  col_wind_ = find("wind_speed");
  col_dt_ = find("thermal_gradient");
  col_vib_ = find("vibration_rms");
  col_vibf_ = find("vibration_freq");
  col_rf_ = find("rf_power_density");
  col_water_ = find("water_flow");
  t_first_ = trace_.rows.front()[static_cast<std::size_t>(col_time_)];
  t_last_ = trace_.rows.back()[static_cast<std::size_t>(col_time_)];
  require_spec(t_last_ > t_first_, "TraceEnvironment: trace time must be increasing");
  duration_ = Seconds{t_last_ - t_first_};
}

TraceEnvironment TraceEnvironment::from_file(const std::string& path) {
  return TraceEnvironment(read_csv(path), "trace:" + path);
}

double TraceEnvironment::cell(std::size_t row, int col) const {
  if (col < 0) return 0.0;
  return trace_.rows[row][static_cast<std::size_t>(col)];
}

AmbientConditions TraceEnvironment::advance(Seconds now, Seconds dt) {
  (void)dt;
  const double t0 = t_first_;
  double t = t0 + std::fmod(now.value(), duration_.value());
  if (t < t0) t += duration_.value();
  // The last row is the loop's end marker, identical in phase to the first:
  // the wrapped time is < duration mathematically, but the fmod-plus-t0
  // rounding can land t exactly on (or past) the final timestamp — e.g. when
  // fl(t_last - t0) rounded the duration up — and the binary search would
  // then play the end marker for one step instead of restarting the loop.
  if (t >= t_last_) t = t0;
  // Find the last row with time <= t (rows are sorted by construction check
  // on endpoints; binary search over the time column).
  std::size_t lo = 0;
  std::size_t hi = trace_.rows.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (trace_.rows[mid][static_cast<std::size_t>(col_time_)] <= t)
      lo = mid;
    else
      hi = mid - 1;
  }
  AmbientConditions c;
  c.solar_irradiance = WattsPerSquareMeter{cell(lo, col_solar_)};
  c.illuminance = Lux{cell(lo, col_lux_)};
  c.wind_speed = MetersPerSecond{cell(lo, col_wind_)};
  c.thermal_gradient = Kelvin{cell(lo, col_dt_)};
  c.vibration_rms = MetersPerSecondSquared{cell(lo, col_vib_)};
  c.vibration_freq = Hertz{cell(lo, col_vibf_)};
  c.rf_power_density = WattsPerSquareMeter{cell(lo, col_rf_)};
  c.water_flow = MetersPerSecond{cell(lo, col_water_)};
  return c;
}

}  // namespace msehsim::env
