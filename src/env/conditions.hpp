// Ambient energy conditions seen by a deployment site at one instant.
//
// This is the interface between the environment generators (src/env) and the
// transducer models (src/harvest): each harvester reads the one channel it
// transduces. A channel that is absent at a site is simply zero.
#pragma once

#include <cmath>

#include "core/units.hpp"

namespace msehsim::env {

struct AmbientConditions {
  /// Broadband solar irradiance on the harvester plane (outdoor PV).
  WattsPerSquareMeter solar_irradiance{0.0};
  /// Illuminance (indoor PV under artificial light).
  Lux illuminance{0.0};
  /// Free-stream air speed at the turbine (outdoor wind or HVAC flow).
  MetersPerSecond wind_speed{0.0};
  /// Temperature difference across a thermoelectric generator.
  Kelvin thermal_gradient{0.0};
  /// RMS base acceleration of the dominant vibration tone.
  MetersPerSecondSquared vibration_rms{0.0};
  /// Frequency of the dominant vibration tone.
  Hertz vibration_freq{0.0};
  /// Incident RF power density at the rectenna.
  WattsPerSquareMeter rf_power_density{0.0};
  /// Water flow speed at a micro hydro turbine (MPWiNode scenario).
  MetersPerSecond water_flow{0.0};

  /// Field-wise equality — the cache key test for memoized per-conditions
  /// quantities (e.g. Harvester::maximum_power_point). Exact double
  /// comparison on purpose: any numeric drift must invalidate.
  friend bool operator==(const AmbientConditions&,
                         const AmbientConditions&) = default;
};

/// @p c with every NaN channel replaced by +0.0. A NaN ambient reading is a
/// sensor artifact, not a physical level — and because NaN != NaN, a NaN
/// channel would make any conditions-keyed memo (the MPP cache in
/// harvest::Harvester) compare unequal to itself and recompute every step
/// while the curve itself got poisoned. Zero is the "channel absent"
/// convention everywhere else in env.
[[nodiscard]] inline AmbientConditions sanitized(AmbientConditions c) {
  const auto fix = [](double v) { return std::isnan(v) ? 0.0 : v; };
  c.solar_irradiance = WattsPerSquareMeter{fix(c.solar_irradiance.value())};
  c.illuminance = Lux{fix(c.illuminance.value())};
  c.wind_speed = MetersPerSecond{fix(c.wind_speed.value())};
  c.thermal_gradient = Kelvin{fix(c.thermal_gradient.value())};
  c.vibration_rms = MetersPerSecondSquared{fix(c.vibration_rms.value())};
  c.vibration_freq = Hertz{fix(c.vibration_freq.value())};
  c.rf_power_density = WattsPerSquareMeter{fix(c.rf_power_density.value())};
  c.water_flow = MetersPerSecond{fix(c.water_flow.value())};
  return c;
}

/// @p c with every channel multiplied by @p gain — a uniformly miscalibrated
/// ambient-sensing front end (fault::FaultKind::kSensorDrift). Used to feed
/// operating-point trackers a skewed view of the environment while the
/// physics keeps seeing the true conditions. gain == 1 returns @p c exactly
/// (bit-identical, so the unfaulted path is unchanged).
[[nodiscard]] inline AmbientConditions scaled(AmbientConditions c, double gain) {
  if (gain == 1.0) return c;
  c.solar_irradiance *= gain;
  c.illuminance *= gain;
  c.wind_speed *= gain;
  c.thermal_gradient *= gain;
  c.vibration_rms *= gain;
  c.vibration_freq *= gain;
  c.rf_power_density *= gain;
  c.water_flow *= gain;
  return c;
}

}  // namespace msehsim::env
