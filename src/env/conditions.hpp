// Ambient energy conditions seen by a deployment site at one instant.
//
// This is the interface between the environment generators (src/env) and the
// transducer models (src/harvest): each harvester reads the one channel it
// transduces. A channel that is absent at a site is simply zero.
#pragma once

#include "core/units.hpp"

namespace msehsim::env {

struct AmbientConditions {
  /// Broadband solar irradiance on the harvester plane (outdoor PV).
  WattsPerSquareMeter solar_irradiance{0.0};
  /// Illuminance (indoor PV under artificial light).
  Lux illuminance{0.0};
  /// Free-stream air speed at the turbine (outdoor wind or HVAC flow).
  MetersPerSecond wind_speed{0.0};
  /// Temperature difference across a thermoelectric generator.
  Kelvin thermal_gradient{0.0};
  /// RMS base acceleration of the dominant vibration tone.
  MetersPerSecondSquared vibration_rms{0.0};
  /// Frequency of the dominant vibration tone.
  Hertz vibration_freq{0.0};
  /// Incident RF power density at the rectenna.
  WattsPerSquareMeter rf_power_density{0.0};
  /// Water flow speed at a micro hydro turbine (MPWiNode scenario).
  MetersPerSecond water_flow{0.0};

  /// Field-wise equality — the cache key test for memoized per-conditions
  /// quantities (e.g. Harvester::maximum_power_point). Exact double
  /// comparison on purpose: any numeric drift must invalidate.
  friend bool operator==(const AmbientConditions&,
                         const AmbientConditions&) = default;
};

}  // namespace msehsim::env
