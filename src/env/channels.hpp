// Stochastic generators for individual ambient-energy channels.
//
// These are the substitution for the paper's physical deployment
// environments (DESIGN.md §5): each generator reproduces the *temporal
// structure* that drives the survey's claims — diurnal solar cycles, gusty
// Weibull wind, machinery duty schedules, bursty RF — from seeded
// deterministic streams.
#pragma once

#include <cstdint>

#include "core/random.hpp"
#include "core/units.hpp"

namespace msehsim::env {

/// Clear-sky solar irradiance with two-state Markov cloud cover.
/// Irradiance follows the solar elevation for the configured latitude and
/// day of year; cloudy periods attenuate it.
class SolarChannel {
 public:
  struct Params {
    double latitude_deg{44.5};        ///< Bologna, the Smart Power Unit site
    int day_of_year{172};             ///< near summer solstice
    WattsPerSquareMeter clear_sky_peak{1000.0};
    double cloud_attenuation{0.25};   ///< irradiance multiplier when cloudy
    Seconds mean_clear_spell{4.0 * 3600.0};
    Seconds mean_cloudy_spell{2.0 * 3600.0};
  };

  SolarChannel(Params params, std::uint64_t seed);

  /// Advances internal cloud state and returns irradiance at @p now.
  WattsPerSquareMeter advance(Seconds now, Seconds dt);

  /// Deterministic clear-sky irradiance at @p now (no clouds) — used by
  /// tests and for analytic baselines.
  [[nodiscard]] WattsPerSquareMeter clear_sky(Seconds now) const;

  [[nodiscard]] bool cloudy() const { return cloudy_; }

 private:
  Params params_;
  Pcg32 rng_;
  bool cloudy_{false};
};

/// Indoor artificial lighting following an occupancy schedule:
/// lights on during working hours on weekdays, plus sensor noise.
class IndoorLightChannel {
 public:
  struct Params {
    Lux on_level{500.0};
    Lux off_level{5.0};          ///< safety/emergency lighting
    double on_hour{8.0};
    double off_hour{18.0};
    double weekend_on_probability{0.1};
    double noise_fraction{0.05};
  };

  IndoorLightChannel(Params params, std::uint64_t seed);

  Lux advance(Seconds now, Seconds dt);

 private:
  Params params_;
  Pcg32 rng_;
  int cached_day_{-1};
  bool day_active_{true};
};

/// Weibull-distributed wind with AR(1) temporal correlation and a diurnal
/// modulation (afternoons windier than nights, typical for near-ground
/// anemometry where micro wind turbines operate).
class WindChannel {
 public:
  struct Params {
    double weibull_shape{2.0};          ///< Rayleigh-like
    MetersPerSecond weibull_scale{4.5}; ///< mean ~4 m/s
    Seconds correlation_time{15.0 * 60.0};
    double diurnal_amplitude{0.3};      ///< +-30 % swing across the day
  };

  WindChannel(Params params, std::uint64_t seed);

  MetersPerSecond advance(Seconds now, Seconds dt);

 private:
  Params params_;
  Pcg32 rng_;
  double z_{0.0};  ///< latent AR(1) Gaussian state
};

/// Constant low-speed airflow from building ventilation (indoor "wind").
class HvacFlowChannel {
 public:
  struct Params {
    MetersPerSecond duct_speed{1.8};
    double on_hour{6.0};
    double off_hour{20.0};
    double noise_fraction{0.1};
  };

  HvacFlowChannel(Params params, std::uint64_t seed);

  MetersPerSecond advance(Seconds now, Seconds dt);

 private:
  Params params_;
  Pcg32 rng_;
};

/// Temperature gradient across a TEG mounted on duty-cycled machinery.
/// The gradient relaxes toward the on/off target with a first-order lag.
class ThermalChannel {
 public:
  struct Params {
    Kelvin gradient_on{12.0};
    Kelvin gradient_off{0.5};
    Seconds mean_on_time{45.0 * 60.0};
    Seconds mean_off_time{30.0 * 60.0};
    Seconds thermal_time_constant{5.0 * 60.0};
  };

  ThermalChannel(Params params, std::uint64_t seed);

  Kelvin advance(Seconds now, Seconds dt);

  [[nodiscard]] bool machinery_on() const { return on_; }

 private:
  Params params_;
  Pcg32 rng_;
  bool on_{false};
  Seconds state_time_left_{0.0};
  Kelvin gradient_{0.5};
};

/// Machinery vibration: a dominant tone whose amplitude follows the same
/// on/off duty pattern, with small frequency wander.
class VibrationChannel {
 public:
  struct Params {
    MetersPerSecondSquared amplitude_on{3.0};
    MetersPerSecondSquared amplitude_off{0.05};
    Hertz base_frequency{50.0};
    double frequency_jitter{0.02};
    Seconds mean_on_time{45.0 * 60.0};
    Seconds mean_off_time{30.0 * 60.0};
  };

  struct Sample {
    MetersPerSecondSquared rms;
    Hertz frequency;
  };

  VibrationChannel(Params params, std::uint64_t seed);

  Sample advance(Seconds now, Seconds dt);

  [[nodiscard]] bool machinery_on() const { return on_; }

 private:
  Params params_;
  Pcg32 rng_;
  bool on_{false};
  Seconds state_time_left_{0.0};
};

/// Ambient RF: a weak continuous background plus Poisson bursts (nearby
/// transmitter activity), as seen by rectenna harvesters.
class RfChannel {
 public:
  struct Params {
    WattsPerSquareMeter background{1e-4};
    WattsPerSquareMeter burst_level{5e-3};
    Seconds mean_burst_interval{10.0 * 60.0};
    Seconds mean_burst_duration{30.0};
  };

  RfChannel(Params params, std::uint64_t seed);

  WattsPerSquareMeter advance(Seconds now, Seconds dt);

  [[nodiscard]] bool bursting() const { return burst_time_left_.value() > 0.0; }

 private:
  Params params_;
  Pcg32 rng_;
  Seconds burst_time_left_{0.0};
  Seconds next_burst_in_{0.0};
  bool initialized_{false};
};

/// Irrigation/stream water flow on a schedule (the MPWiNode agricultural
/// scenario): a few pumping windows per day.
class WaterFlowChannel {
 public:
  struct Params {
    MetersPerSecond flow_speed{1.2};
    double window_start_hours[2] = {6.0, 17.0};
    Seconds window_duration{2.0 * 3600.0};
    double noise_fraction{0.08};
  };

  WaterFlowChannel(Params params, std::uint64_t seed);

  MetersPerSecond advance(Seconds now, Seconds dt);

 private:
  Params params_;
  Pcg32 rng_;
};

/// Hour of day in [0, 24) for a simulation timestamp.
double hour_of_day(Seconds now);

/// Day index (0-based) for a simulation timestamp.
int day_index(Seconds now);

}  // namespace msehsim::env
