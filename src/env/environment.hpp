// Composite deployment environment.
//
// An Environment owns whichever channel generators exist at a site and
// produces one AmbientConditions sample per simulation step. Presets cover
// the deployment classes the survey discusses: outdoor (System A, AmbiMax),
// indoor industrial (System B, Cymbet, EH-Link), and agricultural
// (MPWiNode). A TraceEnvironment plays back measured CSV traces instead.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/csv.hpp"
#include "env/channels.hpp"
#include "env/conditions.hpp"

namespace msehsim::env {

/// Interface: anything that yields ambient conditions over time.
class EnvironmentModel {
 public:
  virtual ~EnvironmentModel() = default;

  /// Advances internal state by @p dt and returns conditions valid over
  /// [now, now + dt).
  virtual AmbientConditions advance(Seconds now, Seconds dt) = 0;

  /// Human-readable site description.
  [[nodiscard]] virtual std::string description() const = 0;
};

/// Synthetic environment assembled from optional channels.
class Environment final : public EnvironmentModel {
 public:
  /// Builder-style channel installation. Channels left unset read as zero.
  Environment& with_solar(SolarChannel::Params p);
  Environment& with_indoor_light(IndoorLightChannel::Params p);
  Environment& with_wind(WindChannel::Params p);
  Environment& with_hvac_flow(HvacFlowChannel::Params p);
  Environment& with_thermal(ThermalChannel::Params p);
  Environment& with_vibration(VibrationChannel::Params p);
  Environment& with_rf(RfChannel::Params p);
  Environment& with_water_flow(WaterFlowChannel::Params p);

  explicit Environment(std::uint64_t seed, std::string description = "synthetic");

  AmbientConditions advance(Seconds now, Seconds dt) override;
  [[nodiscard]] std::string description() const override { return description_; }

  // -- Presets matching the survey's deployment classes -------------------

  /// Outdoor site: sun + wind (System A / AmbiMax scenario).
  static Environment outdoor(std::uint64_t seed);

  /// Indoor industrial site: artificial light, HVAC airflow, machinery
  /// thermal gradients and vibration, ambient RF (System B scenario).
  static Environment indoor_industrial(std::uint64_t seed);

  /// Agricultural site: sun, wind, irrigation water flow (MPWiNode).
  static Environment agricultural(std::uint64_t seed);

  /// Office site: artificial light and RF only (energy-sparse indoor).
  static Environment office(std::uint64_t seed);

 private:
  std::uint64_t seed_;
  std::string description_;
  std::optional<SolarChannel> solar_;
  std::optional<IndoorLightChannel> indoor_light_;
  std::optional<WindChannel> wind_;
  std::optional<HvacFlowChannel> hvac_;
  std::optional<ThermalChannel> thermal_;
  std::optional<VibrationChannel> vibration_;
  std::optional<RfChannel> rf_;
  std::optional<WaterFlowChannel> water_;
};

/// Plays back a CSV trace with columns named after AmbientConditions fields
/// (`time`, `solar_irradiance`, `illuminance`, `wind_speed`,
/// `thermal_gradient`, `vibration_rms`, `vibration_freq`,
/// `rf_power_density`, `water_flow`); missing columns read as zero.
/// Values are held piecewise-constant between trace rows; the trace loops.
class TraceEnvironment final : public EnvironmentModel {
 public:
  explicit TraceEnvironment(CsvData trace, std::string description = "trace");

  static TraceEnvironment from_file(const std::string& path);

  AmbientConditions advance(Seconds now, Seconds dt) override;
  [[nodiscard]] std::string description() const override { return description_; }

  /// Trace duration (time of last row); playback wraps modulo this.
  [[nodiscard]] Seconds duration() const { return duration_; }

 private:
  [[nodiscard]] double cell(std::size_t row, int col) const;

  CsvData trace_;
  std::string description_;
  Seconds duration_{0.0};
  double t_first_{0.0}, t_last_{0.0};
  int col_time_{-1}, col_solar_{-1}, col_lux_{-1}, col_wind_{-1}, col_dt_{-1},
      col_vib_{-1}, col_vibf_{-1}, col_rf_{-1}, col_water_{-1};
};

}  // namespace msehsim::env
