#include "env/trace_cache.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <charconv>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string_view>
#include <system_error>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace msehsim::env {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'M', 'S', 'E', 'H', 'T', 'R', 'C', '1'};

/// Part of the invalidation key: a new library release may change any
/// generator's numerics, so old entries must stop matching. Keep in sync
/// with the CMake project version.
constexpr const char* kLibraryVersion = "msehsim/1.0.0";

/// On-disk header, 64 bytes, naturally aligned little-endian PODs (the
/// simulator only targets little-endian; a foreign-endian file fails the
/// magic-adjacent sanity checks and degrades to a miss).
struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t channel_mask;
  std::uint64_t key_hash;
  std::uint64_t steps;
  double dt;
  double duration;
  std::uint32_t desc_len;
  std::uint32_t payload_offset;
  std::uint64_t payload_bytes;
};
static_assert(sizeof(FileHeader) == 64, "header layout is part of the format");

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { fnv_bytes(h, &v, sizeof(v)); }

/// Length-prefixed so adjacent strings cannot alias ("ab"+"c" vs "a"+"bc").
void fnv_string(std::uint64_t& h, std::string_view s) {
  fnv_u64(h, s.size());
  fnv_bytes(h, s.data(), s.size());
}

std::string hex16(std::uint64_t v) {
  char buf[17] = {};
  char* p = std::to_chars(buf, buf + 16, v, 16).ptr;
  std::string digits(buf, p);
  return std::string(16 - digits.size(), '0') + digits;
}

std::size_t round_up8(std::size_t n) { return (n + 7u) & ~std::size_t{7}; }

}  // namespace

TraceCache::TraceCache(std::string dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {
  sweep_orphaned_temps();
}

void TraceCache::sweep_orphaned_temps() {
  // A writer that crashed between ofstream and rename() leaves a
  // `<hash>.tmp.<pid>.<n>` file behind forever: it never matches the
  // `.mtrc` probe, so nothing would otherwise reclaim it. Sweep such
  // orphans when a cache opens the directory AND on every eviction pass —
  // a long-lived daemon opens its cache once and then runs for months, so
  // an open-only sweep would let crashed writers leak tmp files for the
  // life of the process. An age floor keeps a live writer in another
  // process safe — a store takes milliseconds, so anything older than the
  // floor can only be an orphan.
  constexpr auto kOrphanAge = std::chrono::minutes(15);
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir_, ec)) {
    if (de.path().filename().string().find(".tmp.") == std::string::npos)
      continue;
    std::error_code fec;
    const auto mtime = de.last_write_time(fec);
    if (fec) continue;
    if (fs::file_time_type::clock::now() - mtime < kOrphanAge) continue;
    fs::remove(de.path(), fec);
  }
}

std::uint64_t TraceCache::key_hash(const TraceCacheKey& key) {
  std::uint64_t h = kFnvOffset;
  fnv_string(h, kLibraryVersion);
  fnv_u64(h, kFormatVersion);
  fnv_u64(h, CompiledTrace::kChannelCount);
  for (const char* name : CompiledTrace::channel_names()) fnv_string(h, name);
  fnv_string(h, key.scenario);
  fnv_u64(h, key.seed);
  fnv_u64(h, std::bit_cast<std::uint64_t>(key.dt.value()));
  fnv_u64(h, std::bit_cast<std::uint64_t>(key.duration.value()));
  return h;
}

std::string TraceCache::entry_path(const TraceCacheKey& key) const {
  return (fs::path(dir_) / (hex16(key_hash(key)) + ".mtrc")).string();
}

std::shared_ptr<const CompiledTrace> TraceCache::load(const TraceCacheKey& key) {
  OBS_SPAN("env.trace_cache.probe", "env");
  const auto miss = [this]() -> std::shared_ptr<const CompiledTrace> {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return nullptr;
  };

  const std::string path = entry_path(key);
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return miss();

  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0 ||
      static_cast<std::size_t>(st.st_size) < sizeof(FileHeader)) {
    ::close(fd);
    return miss();
  }
  const auto file_bytes = static_cast<std::size_t>(st.st_size);

  void* base = nullptr;
  {
    OBS_SPAN("env.trace_cache.map", "env");
    base = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  }
  ::close(fd);
  if (base == MAP_FAILED) return miss();
  // From here the mapping's lifetime rides on this shared_ptr: validation
  // failures just drop it, and a successful load hands it to the trace.
  std::shared_ptr<const void> backing(
      base, [file_bytes](const void* p) {
        ::munmap(const_cast<void*>(p), file_bytes);
      });
  const auto* bytes = static_cast<const unsigned char*>(base);

  FileHeader h{};
  std::memcpy(&h, bytes, sizeof(h));
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) return miss();
  if (h.version != kFormatVersion) return miss();
  if (h.key_hash != key_hash(key)) return miss();
  if (h.steps == 0 || h.channel_mask >= (1u << CompiledTrace::kChannelCount))
    return miss();
  // A zero-length payload (no channels present) carries no samples: treat
  // it as a miss rather than hand playback an all-elided trace.
  if (h.channel_mask == 0 || h.payload_bytes == 0) return miss();
  const auto present =
      static_cast<std::size_t>(std::popcount(h.channel_mask));
  if (h.payload_offset % 8 != 0 ||
      h.payload_offset < sizeof(FileHeader) + h.desc_len)
    return miss();
  if (h.payload_bytes != present * h.steps * sizeof(double)) return miss();
  if (file_bytes != h.payload_offset + h.payload_bytes) return miss();
  if (!(h.dt > 0.0) || !(h.duration > 0.0)) return miss();

  std::shared_ptr<CompiledTrace> trace(new CompiledTrace());
  trace->dt_ = Seconds{h.dt};
  trace->duration_ = Seconds{h.duration};
  trace->steps_ = h.steps;
  trace->description_.assign(
      reinterpret_cast<const char*>(bytes + sizeof(FileHeader)), h.desc_len);
  const double* payload =
      reinterpret_cast<const double*>(bytes + h.payload_offset);
  std::size_t next = 0;
  for (int ch = 0; ch < CompiledTrace::kChannelCount; ++ch) {
    if (h.channel_mask & (1u << ch))
      trace->view_[static_cast<std::size_t>(ch)] = payload + (next++) * h.steps;
  }
  trace->backing_ = std::move(backing);
  trace->mapped_bytes_ = file_bytes;

  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
    stats_.bytes_mapped += file_bytes;
  }
  return trace;
}

void TraceCache::store(const TraceCacheKey& key, const CompiledTrace& trace) {
  OBS_SPAN("env.trace_cache.write", "env");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return;

  FileHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kFormatVersion;
  h.key_hash = key_hash(key);
  h.steps = trace.step_count();
  h.dt = trace.dt().value();
  h.duration = trace.duration().value();
  for (int ch = 0; ch < CompiledTrace::kChannelCount; ++ch)
    if (trace.channel(ch) != nullptr) h.channel_mask |= 1u << ch;
  const std::string& desc = trace.description();
  h.desc_len = static_cast<std::uint32_t>(desc.size());
  h.payload_offset =
      static_cast<std::uint32_t>(round_up8(sizeof(FileHeader) + desc.size()));
  h.payload_bytes = static_cast<std::uint64_t>(
                        std::popcount(h.channel_mask)) *
                    h.steps * sizeof(double);
  // Never persist an entry load() would reject: an all-elided or empty
  // trace has a zero-length payload, which reads back as a miss anyway.
  if (h.payload_bytes == 0) return;

  // Unique temp name per (entry, process, attempt): a concurrent writer of
  // the same entry must never interleave into one temp file. rename() then
  // publishes the finished bytes atomically.
  static std::atomic<std::uint64_t> counter{0};
  const fs::path final_path = entry_path(key);
  const fs::path tmp_path =
      fs::path(dir_) / (hex16(h.key_hash) + ".tmp." +
                        std::to_string(::getpid()) + "." +
                        std::to_string(counter.fetch_add(1)));

  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(&h), sizeof(h));
    out.write(desc.data(), static_cast<std::streamsize>(desc.size()));
    const std::size_t pad = h.payload_offset - sizeof(FileHeader) - desc.size();
    static constexpr char zeros[8] = {};
    out.write(zeros, static_cast<std::streamsize>(pad));
    for (int ch = 0; ch < CompiledTrace::kChannelCount; ++ch) {
      const double* v = trace.channel(ch);
      if (v == nullptr) continue;
      out.write(reinterpret_cast<const char*>(v),
                static_cast<std::streamsize>(trace.step_count() *
                                             sizeof(double)));
    }
    out.flush();
    if (!out.good()) {
      out.close();
      fs::remove(tmp_path, ec);
      return;
    }
  }

  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return;
  }
  evict_over_cap();
}

void TraceCache::evict_over_cap() {
  // The eviction pass doubles as the steady-state orphan reaper: it already
  // runs after every store and already walks the directory, so stale temps
  // are reclaimed for the whole life of a long-running process, not just at
  // open. Runs before the cap check — an unbounded cache still reaps.
  sweep_orphaned_temps();
  if (max_bytes_ == 0) return;
  struct Entry {
    fs::path path;
    std::uint64_t bytes;
    fs::file_time_type mtime;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir_, ec)) {
    if (de.path().extension() != ".mtrc") continue;
    std::error_code fec;
    const auto bytes = de.file_size(fec);
    if (fec) continue;
    const auto mtime = de.last_write_time(fec);
    if (fec) continue;
    entries.push_back({de.path(), bytes, mtime});
    total += bytes;
  }
  if (ec || total <= max_bytes_) return;
  // Oldest-first; ties broken by path so eviction order is deterministic.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path < b.path;
  });
  for (const auto& e : entries) {
    if (total <= max_bytes_) break;
    std::error_code rec;
    if (fs::remove(e.path, rec) && !rec) {
      total -= e.bytes;
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.evictions;
    }
  }
}

TraceCacheStats TraceCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace msehsim::env
