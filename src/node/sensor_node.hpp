// Embedded wireless sensor node load model.
//
// The survey's target load: a duty-cycled sensing + radio device with
// "bursty" consumption (Sec. II.1). Within the quasi-static step model the
// node presents its cycle-averaged power, while packet and reboot counts
// are tracked discretely. Brownout semantics follow deployed practice: if
// the regulated rail disappears the node is down, and regaining the rail
// costs a reboot (boot time at active current) before useful work resumes.
#pragma once

#include <string>

#include "core/units.hpp"

namespace msehsim::node {

/// MCU current draw per state (MSP430/CC2530 class defaults).
struct McuParams {
  Amps sleep_current{1.0e-6};
  Amps active_current{3.0e-3};
  Seconds boot_time{2.0};       ///< time at active current after power-up
  Volts min_voltage{1.8};
};

/// Radio energy model (802.15.4 class).
struct RadioParams {
  Amps tx_current{17.0e-3};
  Amps rx_current{19.0e-3};
  double bitrate_bps{250e3};
  /// Ultra-low-power wake-up receiver (the Smart Power Unit's signature
  /// feature, Magno et al. [6]); zero if absent.
  Amps wake_up_rx_current{0.0};
};

/// Periodic sense-process-transmit workload.
struct WorkloadParams {
  Seconds task_period{30.0};
  Seconds min_period{5.0};
  Seconds max_period{3600.0};
  Seconds processing_time{5e-3};   ///< MCU active per cycle
  double packet_bytes{32.0};
  double rx_ack_bytes{8.0};
  Joules sensor_energy{50e-6};     ///< transducer sampling cost per cycle
  double query_response_bytes{24.0};  ///< reply to an asynchronous query
};

class SensorNode {
 public:
  SensorNode(std::string name, McuParams mcu, RadioParams radio, WorkloadParams work);

  /// Advances one step. @p rail_on tells whether the output conditioning
  /// chain can supply the rail; @p rail_voltage is the regulated voltage.
  /// Returns the average power the node draws from the rail this step.
  Watts step(bool rail_on, Volts rail_voltage, Seconds dt);

  /// Delivers an asynchronous over-the-air query (the Smart Power Unit's
  /// "ultra low power radio trigger" use case, Magno et al. [6]). A node
  /// with a wake-up receiver answers whenever it is up, paying the response
  /// transmission energy; a node without one sleeps through the query and
  /// misses it. Returns true if the query was answered.
  bool deliver_query(Volts rail_voltage);

  [[nodiscard]] std::uint64_t queries_received() const { return queries_received_; }
  [[nodiscard]] std::uint64_t queries_answered() const { return queries_answered_; }

  /// Energy-aware duty-cycle knob (clamped to [min_period, max_period]).
  void set_task_period(Seconds period);
  [[nodiscard]] Seconds task_period() const { return work_.task_period; }

  /// Average power at the present duty cycle with the rail up.
  [[nodiscard]] Watts average_power(Volts rail_voltage) const;

  /// Lowest possible average power (max period, no wake-up radio losses
  /// excluded — the survey's "adjust duty cycle to conserve energy" floor).
  [[nodiscard]] Watts floor_power(Volts rail_voltage) const;

  // -- Observability --------------------------------------------------------

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] std::uint64_t reboots() const { return reboots_; }
  [[nodiscard]] Seconds uptime() const { return uptime_; }
  [[nodiscard]] Seconds downtime() const { return downtime_; }
  [[nodiscard]] double availability() const;
  [[nodiscard]] bool is_up() const { return state_ == State::kUp; }
  [[nodiscard]] Joules consumed_energy() const { return consumed_; }

  [[nodiscard]] const McuParams& mcu() const { return mcu_; }
  [[nodiscard]] const RadioParams& radio() const { return radio_; }
  [[nodiscard]] const WorkloadParams& workload() const { return work_; }

  // -- Fault hooks (fault::FaultInjector) -----------------------------------

  /// Worn log flash: each sense cycle's sampling/logging write costs
  /// @p factor times the nominal sensor energy (>= 1; multiplicative, so
  /// repeated injections compound like real wear).
  void inject_flash_wear(double factor);
  [[nodiscard]] double flash_wear_factor() const { return flash_wear_factor_; }

  /// Aged radio power amplifier: every transmission (packets and query
  /// responses) draws @p factor times the nominal TX current.
  void inject_radio_pa_degradation(double factor);
  [[nodiscard]] double radio_pa_factor() const { return radio_pa_factor_; }

 private:
  enum class State { kDown, kBooting, kUp };

  /// Energy of one sense-process-transmit cycle at @p rail_voltage.
  [[nodiscard]] Joules cycle_energy(Volts rail_voltage) const;

  std::string name_;
  McuParams mcu_;
  RadioParams radio_;
  WorkloadParams work_;
  State state_{State::kDown};
  double flash_wear_factor_{1.0};
  double radio_pa_factor_{1.0};
  Seconds boot_remaining_{0.0};
  double cycle_accumulator_{0.0};  ///< fractional task cycles completed
  std::uint64_t packets_sent_{0};
  std::uint64_t reboots_{0};
  Seconds uptime_{0.0};
  Seconds downtime_{0.0};
  Joules consumed_{0.0};
  Joules pending_response_energy_{0.0};  ///< drained into the next step's draw
  std::uint64_t queries_received_{0};
  std::uint64_t queries_answered_{0};
};

}  // namespace msehsim::node
