#include "node/sensor_node.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace msehsim::node {

SensorNode::SensorNode(std::string name, McuParams mcu, RadioParams radio,
                       WorkloadParams work)
    : name_(std::move(name)), mcu_(mcu), radio_(radio), work_(work) {
  require_spec(mcu_.sleep_current.value() >= 0.0, "MCU sleep current must be >= 0");
  require_spec(mcu_.active_current > mcu_.sleep_current,
               "MCU active current must exceed sleep current");
  require_spec(mcu_.boot_time.value() >= 0.0, "MCU boot time must be >= 0");
  require_spec(radio_.bitrate_bps > 0.0, "radio bitrate must be > 0");
  require_spec(work_.min_period.value() > 0.0, "workload min period must be > 0");
  require_spec(work_.max_period >= work_.min_period,
               "workload max period must be >= min period");
  require_spec(work_.task_period >= work_.min_period &&
                   work_.task_period <= work_.max_period,
               "workload period outside [min, max]");
}

bool SensorNode::deliver_query(Volts rail_voltage) {
  ++queries_received_;
  // Without a wake-up receiver the main radio is off between duty cycles:
  // the query is lost. With one, an up node detects and answers it.
  if (radio_.wake_up_rx_current.value() <= 0.0) return false;
  if (state_ != State::kUp) return false;
  const Seconds tx_time{work_.query_response_bytes * 8.0 / radio_.bitrate_bps};
  pending_response_energy_ +=
      rail_voltage * radio_.tx_current * radio_pa_factor_ * tx_time;
  ++queries_answered_;
  return true;
}

void SensorNode::set_task_period(Seconds period) {
  work_.task_period = std::clamp(period, work_.min_period, work_.max_period);
}

void SensorNode::inject_flash_wear(double factor) {
  require_spec(factor >= 1.0, "flash wear factor must be >= 1");
  flash_wear_factor_ *= factor;
}

void SensorNode::inject_radio_pa_degradation(double factor) {
  require_spec(factor >= 1.0, "radio PA degradation factor must be >= 1");
  radio_pa_factor_ *= factor;
}

Joules SensorNode::cycle_energy(Volts rail_voltage) const {
  const Seconds tx_time{work_.packet_bytes * 8.0 / radio_.bitrate_bps};
  const Seconds rx_time{work_.rx_ack_bytes * 8.0 / radio_.bitrate_bps};
  const Joules processing = rail_voltage * mcu_.active_current * work_.processing_time;
  const Joules tx = rail_voltage * radio_.tx_current * radio_pa_factor_ * tx_time;
  const Joules rx = rail_voltage * radio_.rx_current * rx_time;
  return processing + tx + rx + work_.sensor_energy * flash_wear_factor_;
}

Watts SensorNode::average_power(Volts rail_voltage) const {
  const Watts base = rail_voltage * (mcu_.sleep_current + radio_.wake_up_rx_current);
  return base + cycle_energy(rail_voltage) / work_.task_period;
}

Watts SensorNode::floor_power(Volts rail_voltage) const {
  const Watts base = rail_voltage * (mcu_.sleep_current + radio_.wake_up_rx_current);
  return base + cycle_energy(rail_voltage) / work_.max_period;
}

double SensorNode::availability() const {
  const double total = (uptime_ + downtime_).value();
  return total > 0.0 ? uptime_.value() / total : 0.0;
}

Watts SensorNode::step(bool rail_on, Volts rail_voltage, Seconds dt) {
  require_spec(dt.value() > 0.0, "SensorNode step dt must be > 0");
  if (!rail_on || rail_voltage < mcu_.min_voltage) {
    if (state_ != State::kDown) {
      state_ = State::kDown;
      cycle_accumulator_ = 0.0;  // in-flight work is lost on brownout
    }
    downtime_ += dt;
    return Watts{0.0};
  }

  if (state_ == State::kDown) {
    state_ = State::kBooting;
    boot_remaining_ = mcu_.boot_time;
    ++reboots_;
  }

  Watts draw{0.0};
  if (state_ == State::kBooting) {
    const Seconds booting = std::min(boot_remaining_, dt);
    boot_remaining_ -= booting;
    draw += rail_voltage * mcu_.active_current * (booting / dt);
    downtime_ += booting;  // boot time is not useful service time
    if (boot_remaining_.value() <= 0.0) state_ = State::kUp;
    const Seconds productive = dt - booting;
    if (productive.value() <= 0.0) {
      consumed_ += draw * dt;
      return draw;
    }
    // Fall through and run the remainder of the step as "up".
    const double frac = productive / dt;
    draw += average_power(rail_voltage) * frac;
    uptime_ += productive;
    cycle_accumulator_ += productive / work_.task_period;
  } else {
    draw = average_power(rail_voltage);
    uptime_ += dt;
    cycle_accumulator_ += dt / work_.task_period;
  }

  while (cycle_accumulator_ >= 1.0) {
    cycle_accumulator_ -= 1.0;
    ++packets_sent_;
  }
  // Drain any pending query-response energy into this step's draw.
  if (pending_response_energy_.value() > 0.0) {
    draw += pending_response_energy_ / dt;
    pending_response_energy_ = Joules{0.0};
  }
  consumed_ += draw * dt;
  return draw;
}

}  // namespace msehsim::node
