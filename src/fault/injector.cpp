#include "fault/injector.hpp"

#include <cmath>
#include <utility>

#include "core/error.hpp"

namespace msehsim::fault {

namespace {

/// Placeholder swapped into a chain for the instant between extracting its
/// harvester and handing back the wrapped one.
class NullHarvester final : public harvest::Harvester {
 public:
  [[nodiscard]] std::string_view name() const override { return "null"; }
  [[nodiscard]] harvest::HarvesterKind kind() const override {
    return harvest::HarvesterKind::kPhotovoltaic;
  }
 protected:
  void do_set_conditions(const env::AmbientConditions&) override {}

 public:
  [[nodiscard]] Amps current_at(Volts) const override { return Amps{0.0}; }
  [[nodiscard]] Volts open_circuit_voltage() const override { return Volts{0.0}; }
};

}  // namespace

FaultInjector::FaultInjector(std::uint64_t seed) : seed_(seed) {}

FaultyHarvester& FaultInjector::ensure_faulty(power::InputChain& chain) {
  if (auto* already = dynamic_cast<FaultyHarvester*>(&chain.harvester()))
    return *already;
  // Derive the wrapper's stream from the harvester's name so every chain
  // gets an independent, reproducible intermittence pattern.
  const std::uint64_t derived = seed_ ^ stream_key(chain.harvester().name());
  auto inner = chain.replace_harvester(std::make_unique<NullHarvester>());
  auto wrapper = std::make_unique<FaultyHarvester>(std::move(inner), derived);
  FaultyHarvester& ref = *wrapper;
  chain.replace_harvester(std::move(wrapper));
  return ref;
}

void FaultInjector::add(Seconds when, FaultKind kind, std::function<void()> apply) {
  require_spec(!armed_, "FaultInjector: schedule is frozen once armed");
  require_spec(when.value() >= 0.0, "fault time must be >= 0");
  schedule_.push_back(Entry{when, kind, std::move(apply)});
}

FaultyHarvester& FaultInjector::harvester_degrade(Seconds when,
                                                  power::InputChain& chain,
                                                  double output_fraction) {
  require_spec(output_fraction >= 0.0 && output_fraction <= 1.0,
               "degradation fraction must be in [0,1]");
  FaultyHarvester& h = ensure_faulty(chain);
  add(when, FaultKind::kHarvesterDegraded, [this, &h, output_fraction] {
    h.degrade(output_fraction);
    ++counters_.harvester;
  });
  return h;
}

FaultyHarvester& FaultInjector::harvester_intermittent(Seconds when,
                                                       power::InputChain& chain,
                                                       double open_probability) {
  require_spec(open_probability >= 0.0 && open_probability <= 1.0,
               "open probability must be in [0,1]");
  FaultyHarvester& h = ensure_faulty(chain);
  add(when, FaultKind::kHarvesterIntermittentOpen, [this, &h, open_probability] {
    h.set_intermittent(open_probability);
    ++counters_.harvester;
  });
  return h;
}

FaultyHarvester& FaultInjector::harvester_stuck_short(Seconds when,
                                                      power::InputChain& chain) {
  FaultyHarvester& h = ensure_faulty(chain);
  add(when, FaultKind::kHarvesterStuckShort, [this, &h] {
    h.stick_short();
    ++counters_.harvester;
  });
  return h;
}

FaultyHarvester& FaultInjector::harvester_heal(Seconds when,
                                               power::InputChain& chain) {
  FaultyHarvester& h = ensure_faulty(chain);
  // Healing is a repair, not a fault: it does not count toward the tally.
  add(when, FaultKind::kHarvesterHealed, [&h] { h.heal(); });
  return h;
}

void FaultInjector::converter_droop(Seconds when, power::InputChain& chain,
                                    double factor) {
  require_spec(factor > 0.0 && factor <= 1.0,
               "efficiency droop factor must be in (0,1]");
  add(when, FaultKind::kConverterDroop, [this, &chain, factor] {
    chain.set_efficiency_droop(factor);
    ++counters_.converter;
  });
}

void FaultInjector::converter_thermal_shutdown(Seconds when,
                                               power::InputChain& chain,
                                               Seconds duration) {
  require_spec(duration.value() > 0.0, "thermal shutdown duration must be > 0");
  add(when, FaultKind::kConverterThermalShutdown, [this, &chain] {
    chain.set_thermal_shutdown(true);
    ++counters_.converter;
  });
  add(when + duration, FaultKind::kConverterThermalShutdown,
      [&chain] { chain.set_thermal_shutdown(false); });
}

void FaultInjector::storage_capacity_fade(Seconds when,
                                          storage::StorageDevice& device,
                                          double fraction) {
  require_spec(fraction >= 0.0 && fraction < 1.0,
               "capacity fade fraction must be in [0,1)");
  add(when, FaultKind::kStorageCapacityFade, [this, &device, fraction] {
    device.inject_capacity_fade(fraction);
    ++counters_.storage;
  });
}

void FaultInjector::storage_leakage_spike(Seconds when,
                                          storage::StorageDevice& device,
                                          double multiplier, Seconds duration) {
  require_spec(multiplier >= 1.0, "leakage spike multiplier must be >= 1");
  require_spec(duration.value() > 0.0, "leakage spike duration must be > 0");
  add(when, FaultKind::kStorageLeakageSpike, [this, &device, multiplier] {
    device.set_leakage_multiplier(multiplier);
    ++counters_.storage;
  });
  add(when + duration, FaultKind::kStorageLeakageSpike,
      [&device] { device.set_leakage_multiplier(1.0); });
}

void FaultInjector::bus_nak_burst(Seconds when, bus::I2cBus& bus,
                                  std::uint32_t transactions) {
  require_spec(transactions > 0, "NAK burst must cover at least one transaction");
  add(when, FaultKind::kBusNakBurst, [this, &bus, transactions] {
    bus.inject_nak_burst(transactions);
    ++counters_.bus;
  });
}

void FaultInjector::bus_bit_errors(Seconds when, bus::I2cBus& bus, double rate,
                                   Seconds duration) {
  require_spec(rate > 0.0 && rate <= 1.0, "bit-error rate must be in (0,1]");
  require_spec(duration.value() > 0.0, "bit-error duration must be > 0");
  add(when, FaultKind::kBusBitErrors, [this, &bus, rate] {
    bus.set_bit_error_rate(rate);
    ++counters_.bus;
  });
  add(when + duration, FaultKind::kBusBitErrors,
      [&bus] { bus.set_bit_error_rate(0.0); });
}

void FaultInjector::bus_stuck(Seconds when, bus::I2cBus& bus, Seconds duration) {
  require_spec(duration.value() > 0.0, "stuck-bus duration must be > 0");
  add(when, FaultKind::kBusStuck, [this, &bus] {
    bus.set_stuck(true);
    ++counters_.bus;
  });
  add(when + duration, FaultKind::kBusStuck, [&bus] { bus.set_stuck(false); });
}

void FaultInjector::node_flash_wear(Seconds when, node::SensorNode& node,
                                    double factor) {
  require_spec(factor >= 1.0, "flash wear factor must be >= 1");
  add(when, FaultKind::kNodeFlashWear, [this, &node, factor] {
    node.inject_flash_wear(factor);
    ++counters_.node;
  });
}

void FaultInjector::node_radio_pa_degrade(Seconds when, node::SensorNode& node,
                                          double factor) {
  require_spec(factor >= 1.0, "radio PA degradation factor must be >= 1");
  add(when, FaultKind::kNodeRadioPaDegradation, [this, &node, factor] {
    node.inject_radio_pa_degradation(factor);
    ++counters_.node;
  });
}

void FaultInjector::sensor_drift(Seconds when, power::InputChain& chain,
                                 double gain, Seconds duration) {
  require_spec(std::isfinite(gain) && gain > 0.0,
               "sensor drift gain must be finite and > 0");
  require_spec(duration.value() >= 0.0, "sensor drift duration must be >= 0");
  const bool is_heal = gain == 1.0;
  add(when, FaultKind::kSensorDrift, [this, &chain, gain, is_heal] {
    chain.set_sense_gain(gain);
    if (!is_heal) ++counters_.environment;
  });
  if (duration.value() > 0.0 && !is_heal) {
    // Self-clearing drift: the recalibration is a repair, not a fault.
    add(when + duration, FaultKind::kSensorDrift,
        [&chain] { chain.set_sense_gain(1.0); });
  }
}

void FaultInjector::arm(Simulation& sim) {
  require_spec(!armed_, "FaultInjector: already armed");
  armed_ = true;
  for (auto& entry : schedule_) {
    // The schedule owns the callables; the event queue borrows them, which
    // is safe because the injector must outlive the armed simulation.
    auto* apply = &entry.apply;
    sim.at(entry.when, [apply](Seconds) { (*apply)(); });
  }
}

}  // namespace msehsim::fault
