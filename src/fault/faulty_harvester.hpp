// Fault-injecting decorator around any Harvester.
//
// Wraps a transducer and perturbs its I-V curve according to the active
// fault mode, without the wrapped model knowing. The decorator advances its
// intermittent-connection state once per set_conditions() call — exactly
// once per simulation step, since the owning InputChain latches conditions
// every step — so a given seed replays the same open/closed pattern
// bit-for-bit regardless of how often the curve is sampled within the step.
#pragma once

#include <cstdint>
#include <memory>

#include "core/random.hpp"
#include "harvest/harvester.hpp"

namespace msehsim::fault {

class FaultyHarvester final : public harvest::Harvester {
 public:
  enum class Mode {
    kHealthy,           ///< transparent pass-through
    kDegraded,          ///< output current scaled by a fraction (soiling, aging)
    kIntermittentOpen,  ///< loose connector: whole steps read open-circuit
    kStuckShort,        ///< shorted terminals: no extractable power at all
  };

  /// @p seed drives the intermittent-connection stream only; two wrappers
  /// with equal seeds and call sequences behave identically.
  FaultyHarvester(std::unique_ptr<harvest::Harvester> inner, std::uint64_t seed);

  [[nodiscard]] std::string_view name() const override { return inner_->name(); }
  [[nodiscard]] harvest::HarvesterKind kind() const override {
    return inner_->kind();
  }
  [[nodiscard]] Amps current_at(Volts v) const override;
  [[nodiscard]] Volts open_circuit_voltage() const override;

  /// Faults preserve Thevenin-ness: a suppressed source is the zero source,
  /// uniform degradation of (Voc - V)/R is (Voc - V)/(R/f), and healthy mode
  /// passes the inner equivalent through.
  [[nodiscard]] std::optional<harvest::TheveninSource> thevenin_equivalent()
      const override;

  /// Uniform current scaling keeps the shifted argmax, so delegate to the
  /// inner closed form and re-read the current through this wrapper's curve.
  [[nodiscard]] harvest::OperatingPoint shifted_mpp(Volts shift) const override;

  // ---- Fault control ------------------------------------------------------

  /// Degraded mode: output current (hence power) scaled by @p output_fraction
  /// in [0, 1].
  void degrade(double output_fraction);

  /// Intermittent-open mode: each step reads open-circuit with probability
  /// @p open_probability, drawn from the seeded stream.
  void set_intermittent(double open_probability);

  /// Stuck-short mode: the transducer delivers nothing until healed.
  void stick_short() { transition(Mode::kStuckShort); }

  /// Back to transparent pass-through.
  void heal() { transition(Mode::kHealthy); }

  [[nodiscard]] Mode mode() const { return mode_; }

  /// False while the active fault suppresses all output (stuck short, or an
  /// intermittent connection that is open this step).
  [[nodiscard]] bool producing() const;

  /// Steps spent under an active fault (degraded counts every step; the
  /// intermittent mode counts only the open ones).
  [[nodiscard]] std::uint64_t faulted_steps() const { return faulted_steps_; }

  /// Mode changes away from the present mode (injections and heals).
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }

  [[nodiscard]] harvest::Harvester& inner() { return *inner_; }

 protected:
  void do_set_conditions(const env::AmbientConditions& c) override;

  /// The wrapped MPP, derived from the inner harvester's (cached) operating
  /// point so a fault-free wrapper adds no golden-section work of its own.
  /// Every fault transition — and every intermittent open/close flip —
  /// invalidates the base-class cache, which is what keeps cached campaigns
  /// byte-identical to uncached ones under injected faults.
  [[nodiscard]] harvest::OperatingPoint compute_mpp() const override;

 private:
  void transition(Mode next);

  std::unique_ptr<harvest::Harvester> inner_;
  Pcg32 rng_;
  Mode mode_{Mode::kHealthy};
  double output_fraction_{1.0};
  double open_probability_{0.0};
  bool open_this_step_{false};
  std::uint64_t faulted_steps_{0};
  std::uint64_t transitions_{0};
};

}  // namespace msehsim::fault
