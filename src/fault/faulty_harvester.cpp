#include "fault/faulty_harvester.hpp"

#include "core/error.hpp"

namespace msehsim::fault {

FaultyHarvester::FaultyHarvester(std::unique_ptr<harvest::Harvester> inner,
                                 std::uint64_t seed)
    : inner_(std::move(inner)), rng_(seed, stream_key("fault.harvester")) {
  require_spec(inner_ != nullptr, "FaultyHarvester needs a harvester to wrap");
}

void FaultyHarvester::transition(Mode next) {
  if (next != mode_) ++transitions_;
  mode_ = next;
  open_this_step_ = false;
  // The effective curve changed (even a re-applied degrade may carry a new
  // fraction); never serve a stale operating point.
  invalidate_mpp_cache();
}

void FaultyHarvester::degrade(double output_fraction) {
  require_spec(output_fraction >= 0.0 && output_fraction <= 1.0,
               "degradation fraction must be in [0,1]");
  output_fraction_ = output_fraction;
  transition(Mode::kDegraded);
}

void FaultyHarvester::set_intermittent(double open_probability) {
  require_spec(open_probability >= 0.0 && open_probability <= 1.0,
               "open probability must be in [0,1]");
  open_probability_ = open_probability;
  transition(Mode::kIntermittentOpen);
}

void FaultyHarvester::do_set_conditions(const env::AmbientConditions& c) {
  inner_->set_conditions(c);
  switch (mode_) {
    case Mode::kHealthy:
      break;
    case Mode::kDegraded:
      ++faulted_steps_;
      break;
    case Mode::kIntermittentOpen: {
      const bool was_open = open_this_step_;
      open_this_step_ = rng_.bernoulli(open_probability_);
      if (open_this_step_) ++faulted_steps_;
      // An open/close flip swaps the whole curve while the conditions key
      // (which the base class tracks) is unchanged — invalidate by hand.
      if (open_this_step_ != was_open) invalidate_mpp_cache();
      break;
    }
    case Mode::kStuckShort:
      ++faulted_steps_;
      break;
  }
}

bool FaultyHarvester::producing() const {
  if (mode_ == Mode::kStuckShort) return false;
  if (mode_ == Mode::kIntermittentOpen && open_this_step_) return false;
  return true;
}

Amps FaultyHarvester::current_at(Volts v) const {
  if (!producing()) return Amps{0.0};
  const Amps i = inner_->current_at(v);
  return mode_ == Mode::kDegraded ? i * output_fraction_ : i;
}

harvest::OperatingPoint FaultyHarvester::compute_mpp() const {
  if (!producing()) return harvest::OperatingPoint{};
  // Degradation scales current uniformly, so the inner argmax is the
  // wrapper's argmax; re-reading the current through the wrapper's own curve
  // applies the scaling exactly as any other caller would see it.
  harvest::OperatingPoint mpp = inner_->maximum_power_point();
  mpp.i = current_at(mpp.v);
  mpp.p = mpp.v * mpp.i;
  return mpp;
}

std::optional<harvest::TheveninSource> FaultyHarvester::thevenin_equivalent()
    const {
  if (!producing()) return harvest::TheveninSource{Volts{0.0}, Ohms{1.0}};
  const auto inner = inner_->thevenin_equivalent();
  if (!inner || mode_ != Mode::kDegraded) return inner;
  if (output_fraction_ <= 0.0)
    return harvest::TheveninSource{Volts{0.0}, Ohms{1.0}};
  return harvest::TheveninSource{inner->voc, inner->r / output_fraction_};
}

harvest::OperatingPoint FaultyHarvester::shifted_mpp(Volts shift) const {
  if (!producing()) return harvest::OperatingPoint{};
  harvest::OperatingPoint mpp = inner_->shifted_mpp(shift);
  mpp.i = current_at(mpp.v + shift);
  mpp.p = mpp.v * mpp.i;
  return mpp;
}

Volts FaultyHarvester::open_circuit_voltage() const {
  // An open connector still shows the source's Voc at the harvester side but
  // nothing reaches the chain terminals; a short clamps them to zero. Either
  // way the chain sees no usable voltage.
  if (!producing()) return Volts{0.0};
  return inner_->open_circuit_voltage();
}

}  // namespace msehsim::fault
