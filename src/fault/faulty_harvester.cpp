#include "fault/faulty_harvester.hpp"

#include "core/error.hpp"

namespace msehsim::fault {

FaultyHarvester::FaultyHarvester(std::unique_ptr<harvest::Harvester> inner,
                                 std::uint64_t seed)
    : inner_(std::move(inner)), rng_(seed, stream_key("fault.harvester")) {
  require_spec(inner_ != nullptr, "FaultyHarvester needs a harvester to wrap");
}

void FaultyHarvester::transition(Mode next) {
  if (next != mode_) ++transitions_;
  mode_ = next;
  open_this_step_ = false;
}

void FaultyHarvester::degrade(double output_fraction) {
  require_spec(output_fraction >= 0.0 && output_fraction <= 1.0,
               "degradation fraction must be in [0,1]");
  output_fraction_ = output_fraction;
  transition(Mode::kDegraded);
}

void FaultyHarvester::set_intermittent(double open_probability) {
  require_spec(open_probability >= 0.0 && open_probability <= 1.0,
               "open probability must be in [0,1]");
  open_probability_ = open_probability;
  transition(Mode::kIntermittentOpen);
}

void FaultyHarvester::set_conditions(const env::AmbientConditions& c) {
  inner_->set_conditions(c);
  switch (mode_) {
    case Mode::kHealthy:
      break;
    case Mode::kDegraded:
      ++faulted_steps_;
      break;
    case Mode::kIntermittentOpen:
      open_this_step_ = rng_.bernoulli(open_probability_);
      if (open_this_step_) ++faulted_steps_;
      break;
    case Mode::kStuckShort:
      ++faulted_steps_;
      break;
  }
}

bool FaultyHarvester::producing() const {
  if (mode_ == Mode::kStuckShort) return false;
  if (mode_ == Mode::kIntermittentOpen && open_this_step_) return false;
  return true;
}

Amps FaultyHarvester::current_at(Volts v) const {
  if (!producing()) return Amps{0.0};
  const Amps i = inner_->current_at(v);
  return mode_ == Mode::kDegraded ? i * output_fraction_ : i;
}

Volts FaultyHarvester::open_circuit_voltage() const {
  // An open connector still shows the source's Voc at the harvester side but
  // nothing reaches the chain terminals; a short clamps them to zero. Either
  // way the chain sees no usable voltage.
  if (!producing()) return Volts{0.0};
  return inner_->open_circuit_voltage();
}

}  // namespace msehsim::fault
