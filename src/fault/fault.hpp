// Fault taxonomy for msehsim.
//
// The survey's systems exist to survive the droop or death of any single
// energy source: System A carries a hydrogen fuel-cell backup for when wind
// and PV both fail, and System B's hot-swappable modules imply devices
// appearing, disappearing, and misbehaving at runtime. This layer names the
// runtime anomalies the simulator can inject. Consistent with
// core/error.hpp, every injected fault is *modelled behaviour*: it flows
// through the components' normal return paths and event counters, never
// through exceptions.
#pragma once

#include <cstdint>
#include <string_view>

namespace msehsim::fault {

/// Injectable fault classes, one group per substrate layer.
enum class FaultKind {
  kHarvesterDegraded,          ///< transducer output scaled down (soiling, aging)
  kHarvesterIntermittentOpen,  ///< loose connector: open-circuit some steps
  kHarvesterStuckShort,        ///< shorted transducer: no extractable power
  kHarvesterHealed,            ///< fault cleared (field repair)
  kConverterDroop,             ///< converter efficiency scaled down
  kConverterThermalShutdown,   ///< converter over-temperature cut-out
  kStorageCapacityFade,        ///< permanent loss of storage capacity
  kStorageLeakageSpike,        ///< self-discharge scaled up for a while
  kBusNakBurst,                ///< next N bus transactions NAK
  kBusBitErrors,               ///< per-byte corruption for a while
  kBusStuck,                   ///< bus held low: all transactions fail
  kNodeFlashWear,              ///< worn log flash: costlier sensor/log writes
  kNodeRadioPaDegradation,     ///< aged PA: higher TX current per packet
  kSensorDrift,                ///< ambient sensing drifts; MPPT sees a skewed curve
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

/// Faults actually fired by an injector, bucketed by layer. "Scheduled but
/// the run ended first" does not count; replaying the same seed and schedule
/// over the same horizon reproduces these numbers exactly.
struct InjectionCounters {
  std::uint64_t harvester{0};
  std::uint64_t converter{0};
  std::uint64_t storage{0};
  std::uint64_t bus{0};
  std::uint64_t node{0};         ///< sensor-node faults (flash, radio PA)
  std::uint64_t environment{0};  ///< ambient-sensing faults (drift)

  [[nodiscard]] std::uint64_t total() const {
    return harvester + converter + storage + bus + node + environment;
  }
};

}  // namespace msehsim::fault
