#include "fault/schedule.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "core/error.hpp"
#include "core/fmt.hpp"
#include "core/random.hpp"

namespace msehsim::fault {

namespace {

/// Which component class a fault keyword targets.
enum class TargetClass { kInput, kStorage, kBus, kNode };

/// Parameter contract of one fault keyword: `a` is the magnitude, `b` the
/// duration. kForbidden cells must be empty, kRequired cells must parse.
enum class Cell { kForbidden, kRequired, kOptional };

struct KeywordSpec {
  std::string_view keyword;
  TargetClass target;
  Cell a;
  Cell b;
  /// Validates magnitude/duration ranges; mirrors the FaultInjector
  /// preconditions so a bad value is diagnosed with its line number instead
  /// of deep inside build_injector. Empty-optional cells arrive as NaN.
  void (*check)(double a, double b);
};

void check_fraction_a(double a, double) {
  require_spec(a >= 0.0 && a <= 1.0, "'a' must be in [0,1]");
}
void check_droop_a(double a, double) {
  require_spec(a > 0.0 && a <= 1.0, "'a' must be in (0,1]");
}
void check_none(double, double) {}
void check_duration_b(double, double b) {
  require_spec(b > 0.0, "'b' (duration) must be > 0");
}
void check_fade_a(double a, double) {
  require_spec(a >= 0.0 && a < 1.0, "'a' must be in [0,1)");
}
void check_spike_ab(double a, double b) {
  require_spec(a >= 1.0, "'a' (multiplier) must be >= 1");
  require_spec(b > 0.0, "'b' (duration) must be > 0");
}
void check_nak_a(double a, double) {
  require_spec(a >= 1.0 && a == std::floor(a) && a <= 4294967295.0,
               "'a' must be a whole transaction count >= 1");
}
void check_bits_ab(double a, double b) {
  require_spec(a > 0.0 && a <= 1.0, "'a' (rate) must be in (0,1]");
  require_spec(b > 0.0, "'b' (duration) must be > 0");
}
void check_wear_a(double a, double) {
  require_spec(a >= 1.0, "'a' (factor) must be >= 1");
}
void check_drift_ab(double a, double b) {
  require_spec(std::isfinite(a) && a > 0.0,
               "'a' (gain) must be finite and > 0");
  if (!std::isnan(b)) require_spec(b >= 0.0, "'b' (duration) must be >= 0");
}

constexpr KeywordSpec kKeywords[] = {
    {"harvester_degrade", TargetClass::kInput, Cell::kRequired,
     Cell::kForbidden, check_fraction_a},
    {"harvester_intermittent", TargetClass::kInput, Cell::kRequired,
     Cell::kForbidden, check_fraction_a},
    {"harvester_stuck_short", TargetClass::kInput, Cell::kForbidden,
     Cell::kForbidden, check_none},
    {"harvester_heal", TargetClass::kInput, Cell::kForbidden, Cell::kForbidden,
     check_none},
    {"converter_droop", TargetClass::kInput, Cell::kRequired, Cell::kForbidden,
     check_droop_a},
    {"converter_thermal_shutdown", TargetClass::kInput, Cell::kForbidden,
     Cell::kRequired, check_duration_b},
    {"storage_capacity_fade", TargetClass::kStorage, Cell::kRequired,
     Cell::kForbidden, check_fade_a},
    {"storage_leakage_spike", TargetClass::kStorage, Cell::kRequired,
     Cell::kRequired, check_spike_ab},
    {"bus_nak_burst", TargetClass::kBus, Cell::kRequired, Cell::kForbidden,
     check_nak_a},
    {"bus_bit_errors", TargetClass::kBus, Cell::kRequired, Cell::kRequired,
     check_bits_ab},
    {"bus_stuck", TargetClass::kBus, Cell::kForbidden, Cell::kRequired,
     check_duration_b},
    {"node_flash_wear", TargetClass::kNode, Cell::kRequired, Cell::kForbidden,
     check_wear_a},
    {"node_radio_pa_degrade", TargetClass::kNode, Cell::kRequired,
     Cell::kForbidden, check_wear_a},
    {"sensor_drift", TargetClass::kInput, Cell::kRequired, Cell::kOptional,
     check_drift_ab},
};

const KeywordSpec* find_keyword(std::string_view keyword) {
  for (const auto& spec : kKeywords)
    if (spec.keyword == keyword) return &spec;
  return nullptr;
}

[[nodiscard]] std::string_view trimmed(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r'))
    s.remove_prefix(1);
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

/// Target token for an input-class fault: "input:N" or the fan-out
/// "input:*". Returns the index, or nullopt for "*".
std::optional<std::size_t> parse_input_target(std::string_view target) {
  constexpr std::string_view prefix = "input:";
  require_spec(target.substr(0, prefix.size()) == prefix,
               "target must be 'input:N' or 'input:*'");
  const std::string_view rest = target.substr(prefix.size());
  if (rest == "*") return std::nullopt;
  std::size_t index = 0;
  const auto [ptr, ec] =
      std::from_chars(rest.data(), rest.data() + rest.size(), index);
  require_spec(ec == std::errc{} && ptr == rest.data() + rest.size() &&
                   !rest.empty(),
               "target must be 'input:N' or 'input:*'");
  return index;
}

std::size_t parse_storage_target(std::string_view target) {
  constexpr std::string_view prefix = "storage:";
  require_spec(target.substr(0, prefix.size()) == prefix,
               "target must be 'storage:N'");
  const std::string_view rest = target.substr(prefix.size());
  std::size_t index = 0;
  const auto [ptr, ec] =
      std::from_chars(rest.data(), rest.data() + rest.size(), index);
  require_spec(ec == std::errc{} && ptr == rest.data() + rest.size() &&
                   !rest.empty(),
               "target must be 'storage:N'");
  return index;
}

/// Full declarative validation of one entry — the single gate both parse()
/// and add() pass through.
void validate_entry(const ScheduleEntry& entry) {
  require_spec(std::isfinite(entry.when.value()) && entry.when.value() >= 0.0,
               "time_s must be finite and >= 0");
  const KeywordSpec* spec = find_keyword(entry.fault);
  require_spec(spec != nullptr, "unknown fault keyword '" + entry.fault + "'");
  switch (spec->target) {
    case TargetClass::kInput:
      parse_input_target(entry.target);
      break;
    case TargetClass::kStorage:
      parse_storage_target(entry.target);
      break;
    case TargetClass::kBus:
      require_spec(entry.target == "bus", "target must be 'bus'");
      break;
    case TargetClass::kNode:
      require_spec(entry.target == "node", "target must be 'node'");
      break;
  }
  const auto check_cell = [&](Cell contract, double value, const char* name) {
    if (contract == Cell::kForbidden)
      require_spec(std::isnan(value),
                   std::string("'") + name + "' must be empty for " +
                       entry.fault);
    else if (contract == Cell::kRequired)
      require_spec(!std::isnan(value),
                   std::string("'") + name + "' is required for " +
                       entry.fault);
  };
  check_cell(spec->a, entry.a, "a");
  check_cell(spec->b, entry.b, "b");
  spec->check(entry.a, entry.b);
  require_spec(entry.count >= 1, "count must be >= 1");
  require_spec(std::isfinite(entry.spread.value()) &&
                   entry.spread.value() >= 0.0,
               "spread_s must be finite and >= 0");
}

/// Registers one concrete instance of @p entry on @p injector.
void apply_entry(FaultInjector& injector, const ScheduleEntry& entry,
                 Seconds when, const ScheduleTargets& targets) {
  const KeywordSpec* spec = find_keyword(entry.fault);  // validated earlier
  std::vector<power::InputChain*> chains;
  if (spec->target == TargetClass::kInput) {
    const auto index = parse_input_target(entry.target);
    if (index.has_value()) {
      require_spec(*index < targets.inputs.size(),
                   "schedule targets " + entry.target + " but the platform has " +
                       std::to_string(targets.inputs.size()) + " input chains");
      chains.push_back(targets.inputs[*index]);
    } else {
      require_spec(!targets.inputs.empty(),
                   "schedule targets input:* but the platform has no input chains");
      chains = targets.inputs;
    }
  }

  if (entry.fault == "harvester_degrade") {
    for (auto* chain : chains) injector.harvester_degrade(when, *chain, entry.a);
  } else if (entry.fault == "harvester_intermittent") {
    for (auto* chain : chains)
      injector.harvester_intermittent(when, *chain, entry.a);
  } else if (entry.fault == "harvester_stuck_short") {
    for (auto* chain : chains) injector.harvester_stuck_short(when, *chain);
  } else if (entry.fault == "harvester_heal") {
    for (auto* chain : chains) injector.harvester_heal(when, *chain);
  } else if (entry.fault == "converter_droop") {
    for (auto* chain : chains) injector.converter_droop(when, *chain, entry.a);
  } else if (entry.fault == "converter_thermal_shutdown") {
    for (auto* chain : chains)
      injector.converter_thermal_shutdown(when, *chain, Seconds{entry.b});
  } else if (entry.fault == "sensor_drift") {
    const Seconds duration{std::isnan(entry.b) ? 0.0 : entry.b};
    for (auto* chain : chains)
      injector.sensor_drift(when, *chain, entry.a, duration);
  } else if (entry.fault == "storage_capacity_fade" ||
             entry.fault == "storage_leakage_spike") {
    const std::size_t index = parse_storage_target(entry.target);
    require_spec(index < targets.stores.size(),
                 "schedule targets " + entry.target + " but the platform has " +
                     std::to_string(targets.stores.size()) + " storage slots");
    storage::StorageDevice& device = *targets.stores[index];
    if (entry.fault == "storage_capacity_fade")
      injector.storage_capacity_fade(when, device, entry.a);
    else
      injector.storage_leakage_spike(when, device, entry.a, Seconds{entry.b});
  } else if (entry.fault == "bus_nak_burst" ||
             entry.fault == "bus_bit_errors" || entry.fault == "bus_stuck") {
    require_spec(targets.bus != nullptr,
                 "schedule targets the bus but the platform has none");
    if (entry.fault == "bus_nak_burst")
      injector.bus_nak_burst(when, *targets.bus,
                             static_cast<std::uint32_t>(entry.a));
    else if (entry.fault == "bus_bit_errors")
      injector.bus_bit_errors(when, *targets.bus, entry.a, Seconds{entry.b});
    else
      injector.bus_stuck(when, *targets.bus, Seconds{entry.b});
  } else if (entry.fault == "node_flash_wear" ||
             entry.fault == "node_radio_pa_degrade") {
    require_spec(targets.node != nullptr,
                 "schedule targets the node but the platform has none");
    if (entry.fault == "node_flash_wear")
      injector.node_flash_wear(when, *targets.node, entry.a);
    else
      injector.node_radio_pa_degrade(when, *targets.node, entry.a);
  }
}

}  // namespace

void Schedule::add(ScheduleEntry entry) {
  validate_entry(entry);
  entries_.push_back(std::move(entry));
}

Schedule Schedule::parse(std::string_view text, std::string_view origin) {
  Schedule schedule;
  enum class Expect { kMagic, kHeader, kRows } expect = Expect::kMagic;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  const auto fail = [&](const std::string& reason) -> void {
    throw SpecError(std::string(origin) + " line " + std::to_string(line_no) +
                    ": " + reason);
  };
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view raw =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    const std::string_view line = trimmed(raw);
    if (line.empty() || line.front() == '#') continue;

    if (expect == Expect::kMagic) {
      if (line != kMagic)
        fail("expected header '" + std::string(kMagic) + "', got '" +
             std::string(line) + "'");
      expect = Expect::kHeader;
      continue;
    }
    if (expect == Expect::kHeader) {
      if (line != kHeader)
        fail("expected column header '" + std::string(kHeader) + "'");
      expect = Expect::kRows;
      continue;
    }

    // Data row: exactly 7 comma-separated cells. A locale-mangled "3,14"
    // grows the column count and is rejected here rather than truncated.
    std::vector<std::string_view> cells;
    std::size_t cell_pos = 0;
    while (true) {
      const std::size_t comma = line.find(',', cell_pos);
      cells.push_back(trimmed(line.substr(
          cell_pos,
          comma == std::string_view::npos ? std::string_view::npos
                                          : comma - cell_pos)));
      if (comma == std::string_view::npos) break;
      cell_pos = comma + 1;
    }
    if (cells.size() != 7)
      fail("expected 7 columns (time_s,fault,target,a,b,count,spread_s), got " +
           std::to_string(cells.size()));

    ScheduleEntry entry;
    const auto when = parse_double(cells[0]);
    if (!when.has_value()) fail("unparseable time_s '" + std::string(cells[0]) + "'");
    entry.when = Seconds{*when};
    entry.fault = std::string(cells[1]);
    entry.target = std::string(cells[2]);
    if (!cells[3].empty()) {
      const auto a = parse_double(cells[3]);
      if (!a.has_value()) fail("unparseable 'a' cell '" + std::string(cells[3]) + "'");
      entry.a = *a;
    }
    if (!cells[4].empty()) {
      const auto b = parse_double(cells[4]);
      if (!b.has_value()) fail("unparseable 'b' cell '" + std::string(cells[4]) + "'");
      entry.b = *b;
    }
    if (!cells[5].empty()) {
      std::uint32_t count = 0;
      const auto [ptr, ec] = std::from_chars(
          cells[5].data(), cells[5].data() + cells[5].size(), count);
      if (ec != std::errc{} || ptr != cells[5].data() + cells[5].size())
        fail("unparseable count '" + std::string(cells[5]) + "'");
      entry.count = count;
    }
    if (!cells[6].empty()) {
      const auto spread = parse_double(cells[6]);
      if (!spread.has_value())
        fail("unparseable spread_s '" + std::string(cells[6]) + "'");
      entry.spread = Seconds{*spread};
    }
    try {
      schedule.add(std::move(entry));
    } catch (const SpecError& e) {
      fail(e.what());
    }
  }
  if (expect == Expect::kMagic)
    throw SpecError(std::string(origin) +
                    ": empty schedule file (missing '" + std::string(kMagic) +
                    "' header)");
  if (expect == Expect::kHeader)
    throw SpecError(std::string(origin) + ": truncated schedule (missing '" +
                    std::string(kHeader) + "' line)");
  return schedule;
}

Schedule Schedule::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require_spec(in.good(), "cannot open fault schedule '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  require_spec(!in.bad(), "error reading fault schedule '" + path + "'");
  return parse(buffer.str(), path);
}

std::string Schedule::to_csv() const {
  std::string out;
  out += kMagic;
  out += '\n';
  out += kHeader;
  out += '\n';
  for (const auto& entry : entries_) {
    append_double(out, entry.when.value());
    out += ',';
    out += entry.fault;
    out += ',';
    out += entry.target;
    out += ',';
    if (!std::isnan(entry.a)) append_double(out, entry.a);
    out += ',';
    if (!std::isnan(entry.b)) append_double(out, entry.b);
    out += ',';
    out += std::to_string(entry.count);
    out += ',';
    append_double(out, entry.spread.value());
    out += '\n';
  }
  return out;
}

std::unique_ptr<FaultInjector> Schedule::build_injector(
    std::uint64_t seed, const ScheduleTargets& targets) const {
  auto injector = std::make_unique<FaultInjector>(seed);
  const std::uint64_t base = seed ^ stream_key("fault.schedule");
  for (std::size_t ordinal = 0; ordinal < entries_.size(); ++ordinal) {
    const ScheduleEntry& entry = entries_[ordinal];
    // One independent stream per entry: inserting a row never perturbs the
    // draws of the rows around it.
    Pcg32 rng(base, static_cast<std::uint64_t>(ordinal));
    for (std::uint32_t i = 0; i < entry.count; ++i) {
      Seconds when = entry.when;
      if (entry.spread.value() > 0.0)
        when += Seconds{rng.next_double() * entry.spread.value()};
      apply_entry(*injector, entry, when, targets);
    }
  }
  return injector;
}

}  // namespace msehsim::fault
