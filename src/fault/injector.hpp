// Deterministic fault-injection scheduler.
//
// A FaultInjector is a seed-reproducible fault schedule: each entry names an
// absolute simulation time, a fault kind, and a target component. arm()
// registers every entry on the Simulation's one-shot event queue, so faults
// fire with the same FIFO ordering guarantees as any other event and a
// seeded schedule replayed over the same horizon produces bit-identical
// traces. Related simulators (the EnHANTs simulation system, the ns-3
// energy framework) treat source outage and storage fade as first-class
// scenario inputs; this is msehsim's equivalent knob.
//
// The injector borrows references to the targeted chains, devices, and
// buses: every target (and the injector itself) must outlive the armed
// Simulation. Counters tally faults that actually *fired*, so a schedule
// reaching past the end of the run reports only what the run experienced.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "bus/i2c.hpp"
#include "core/simulation.hpp"
#include "fault/fault.hpp"
#include "fault/faulty_harvester.hpp"
#include "node/sensor_node.hpp"
#include "power/chain.hpp"
#include "storage/storage.hpp"

namespace msehsim::fault {

class FaultInjector {
 public:
  /// @p seed drives every stochastic fault mechanism scheduled through this
  /// injector (intermittent connections; per-chain streams are derived from
  /// the wrapped harvester's name).
  explicit FaultInjector(std::uint64_t seed);

  // ---- Harvester faults ---------------------------------------------------
  // The chain's transducer is wrapped in a FaultyHarvester on first use
  // (idempotent); the returned reference stays valid for the chain's life.

  /// At @p when, scale the transducer output to @p output_fraction.
  FaultyHarvester& harvester_degrade(Seconds when, power::InputChain& chain,
                                     double output_fraction);
  /// At @p when, start dropping whole steps open with @p open_probability.
  FaultyHarvester& harvester_intermittent(Seconds when, power::InputChain& chain,
                                          double open_probability);
  /// At @p when, short the transducer until healed.
  FaultyHarvester& harvester_stuck_short(Seconds when, power::InputChain& chain);
  /// At @p when, clear any harvester fault on @p chain.
  FaultyHarvester& harvester_heal(Seconds when, power::InputChain& chain);

  // ---- Converter faults ---------------------------------------------------

  /// At @p when, scale the chain's converter output by @p factor (lasting).
  void converter_droop(Seconds when, power::InputChain& chain, double factor);
  /// At @p when, open the chain's power path for @p duration.
  void converter_thermal_shutdown(Seconds when, power::InputChain& chain,
                                  Seconds duration);

  // ---- Storage faults -----------------------------------------------------

  /// At @p when, permanently remove @p fraction of the device's capacity.
  void storage_capacity_fade(Seconds when, storage::StorageDevice& device,
                             double fraction);
  /// At @p when, multiply self-discharge by @p multiplier for @p duration.
  void storage_leakage_spike(Seconds when, storage::StorageDevice& device,
                             double multiplier, Seconds duration);

  // ---- Bus faults ---------------------------------------------------------

  /// At @p when, NAK the next @p transactions bus transactions.
  void bus_nak_burst(Seconds when, bus::I2cBus& bus, std::uint32_t transactions);
  /// At @p when, corrupt payload bytes with probability @p rate for
  /// @p duration.
  void bus_bit_errors(Seconds when, bus::I2cBus& bus, double rate,
                      Seconds duration);
  /// At @p when, hold the bus stuck for @p duration.
  void bus_stuck(Seconds when, bus::I2cBus& bus, Seconds duration);

  // ---- Sensor-node faults -------------------------------------------------

  /// At @p when, multiply the node's per-cycle sensing/logging energy by
  /// @p factor (>= 1, permanent — flash wear does not heal).
  void node_flash_wear(Seconds when, node::SensorNode& node, double factor);
  /// At @p when, multiply the node's TX current by @p factor (>= 1,
  /// permanent — PA aging does not heal).
  void node_radio_pa_degrade(Seconds when, node::SensorNode& node, double factor);

  // ---- Environment faults -------------------------------------------------

  /// At @p when, make @p chain's tracker see the ambient conditions scaled
  /// by @p gain (miscalibrated sensing front end); the transducer physics
  /// keeps the true curve. When @p duration > 0 the drift self-clears
  /// (gain back to 1) that much later; 0 means it lasts until healed by a
  /// later sensor_drift(..., 1.0) entry.
  void sensor_drift(Seconds when, power::InputChain& chain, double gain,
                    Seconds duration = Seconds{0.0});

  // ---- Driving ------------------------------------------------------------

  /// Registers the whole schedule on @p sim's event queue. Call exactly once,
  /// before running; entries already in @p sim's past are rejected with
  /// SpecError (Simulation::at semantics).
  void arm(Simulation& sim);

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] std::size_t scheduled() const { return schedule_.size(); }

  /// Faults fired so far, by layer.
  [[nodiscard]] const InjectionCounters& counters() const { return counters_; }

 private:
  struct Entry {
    Seconds when;
    FaultKind kind;
    std::function<void()> apply;
  };

  /// Wraps the chain's harvester in a FaultyHarvester decorator, once.
  FaultyHarvester& ensure_faulty(power::InputChain& chain);
  void add(Seconds when, FaultKind kind, std::function<void()> apply);

  std::uint64_t seed_;
  std::vector<Entry> schedule_;
  InjectionCounters counters_;
  bool armed_{false};
};

}  // namespace msehsim::fault
