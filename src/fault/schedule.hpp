// Declarative fault campaigns: a versioned, seed-expandable schedule file.
//
// PR 1's FaultInjector made fault runs reproducible, but every experiment
// still wired its schedule in code. A Schedule is the data form of that
// schedule: a line-based CSV spec (versioned header, strict locale-safe
// parsing via core/fmt, '#' comments) naming when each fault fires, what it
// does, and which component it hits. Entries may be stochastic — a count
// and a spread window expand into N instances at seeded-uniform offsets —
// so one file describes a whole family of campaigns, and (file, seed)
// replays bit-identically. build_injector() compiles the schedule against a
// platform's injectable surface (systems::Platform::fault_targets()), so
// experiment binaries and campaign::Campaign share schedule files instead
// of code.
//
// Format (docs/DESIGN.md §7):
//
//   # any comment
//   msehsim-fault-schedule v1
//   time_s,fault,target,a,b,count,spread_s
//   3600,harvester_degrade,input:0,0.35,,1,0
//   21600,bus_stuck,bus,,120,3,7200
//
// `a` is the fault's magnitude, `b` its duration in seconds (where the
// fault has one); empty cells mean "unset". `count` (default 1) instances
// are drawn uniformly over [time_s, time_s + spread_s). Malformed input of
// any kind — wrong header, wrong column count (a comma-locale "3,14" lands
// here), unparseable or out-of-range values — is rejected with a SpecError
// naming the line; nothing is silently truncated.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/units.hpp"
#include "fault/injector.hpp"

namespace msehsim::fault {

/// One schedule row, still in declarative form (keyword + target token).
struct ScheduleEntry {
  Seconds when{0.0};
  std::string fault;    ///< keyword, e.g. "harvester_degrade"
  std::string target;   ///< "input:N", "input:*", "storage:N", "bus", "node"
  double a{std::numeric_limits<double>::quiet_NaN()};  ///< magnitude; NaN = unset
  double b{std::numeric_limits<double>::quiet_NaN()};  ///< duration (s); NaN = unset
  std::uint32_t count{1};
  Seconds spread{0.0};
};

/// The injectable surface a schedule compiles against. Borrowed pointers;
/// systems::Platform::fault_targets() fills one for a built platform.
struct ScheduleTargets {
  std::vector<power::InputChain*> inputs;
  std::vector<storage::StorageDevice*> stores;
  bus::I2cBus* bus{nullptr};
  node::SensorNode* node{nullptr};
};

class Schedule {
 public:
  Schedule() = default;

  /// Parses @p text (the full file contents). @p origin names the source in
  /// diagnostics ("<path> line N: ...").
  static Schedule parse(std::string_view text,
                        std::string_view origin = "<schedule>");

  /// Reads and parses @p path. Missing or unreadable files throw SpecError.
  static Schedule load(const std::string& path);

  /// Appends @p entry after full validation (unknown keyword, malformed
  /// target, missing/extra/out-of-range parameters all throw SpecError) —
  /// the programmatic construction path, guaranteed to accept exactly what
  /// parse() accepts.
  void add(ScheduleEntry entry);

  [[nodiscard]] const std::vector<ScheduleEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Canonical file form: header, then one row per entry with every float
  /// in round-trip-exact form. parse(to_csv()) reproduces the schedule
  /// exactly — the load-vs-programmatic identity the tests pin down.
  [[nodiscard]] std::string to_csv() const;

  /// Compiles the schedule into a ready-to-arm injector. Stochastic entries
  /// expand with draws from Pcg32(seed ^ stream_key("fault.schedule"),
  /// stream = entry ordinal), so expansion depends only on (schedule, seed)
  /// — never on thread count or build order. Target indices out of range
  /// for @p targets (or a "node"/"bus" fault on a platform without one)
  /// throw SpecError. The returned injector borrows @p targets' components
  /// and must not outlive them.
  [[nodiscard]] std::unique_ptr<FaultInjector> build_injector(
      std::uint64_t seed, const ScheduleTargets& targets) const;

  /// The exact first significant line every v1 schedule file must carry.
  static constexpr std::string_view kMagic = "msehsim-fault-schedule v1";
  /// The exact column-header line that must follow it.
  static constexpr std::string_view kHeader =
      "time_s,fault,target,a,b,count,spread_s";

 private:
  std::vector<ScheduleEntry> entries_;
};

}  // namespace msehsim::fault
