#include "fault/fault.hpp"

namespace msehsim::fault {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kHarvesterDegraded: return "harvester degraded";
    case FaultKind::kHarvesterIntermittentOpen: return "harvester intermittent-open";
    case FaultKind::kHarvesterStuckShort: return "harvester stuck-short";
    case FaultKind::kHarvesterHealed: return "harvester healed";
    case FaultKind::kConverterDroop: return "converter efficiency droop";
    case FaultKind::kConverterThermalShutdown: return "converter thermal shutdown";
    case FaultKind::kStorageCapacityFade: return "storage capacity fade";
    case FaultKind::kStorageLeakageSpike: return "storage leakage spike";
    case FaultKind::kBusNakBurst: return "bus NAK burst";
    case FaultKind::kBusBitErrors: return "bus bit errors";
    case FaultKind::kBusStuck: return "bus stuck";
    case FaultKind::kNodeFlashWear: return "node flash wear";
    case FaultKind::kNodeRadioPaDegradation: return "node radio PA degradation";
    case FaultKind::kSensorDrift: return "sensor drift";
  }
  return "?";
}

}  // namespace msehsim::fault
