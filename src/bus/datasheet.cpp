#include "bus/datasheet.hpp"

#include <cstring>

namespace msehsim::bus {

namespace {
constexpr std::uint16_t kMagic = 0xE5D5;  // "Energy Sheet"
constexpr std::uint8_t kVersion = 1;

void put_u16(std::vector<std::uint8_t>& out, std::size_t at, std::uint16_t v) {
  out[at] = static_cast<std::uint8_t>(v & 0xFF);
  out[at + 1] = static_cast<std::uint8_t>(v >> 8);
}

std::uint16_t get_u16(const std::vector<std::uint8_t>& in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] | (in[at + 1] << 8));
}

void put_f64(std::vector<std::uint8_t>& out, std::size_t at, double v) {
  std::memcpy(out.data() + at, &v, sizeof v);
}

double get_f64(const std::vector<std::uint8_t>& in, std::size_t at) {
  double v = 0.0;
  std::memcpy(&v, in.data() + at, sizeof v);
  return v;
}
}  // namespace

std::string_view to_string(DeviceClass c) {
  switch (c) {
    case DeviceClass::kHarvester: return "harvester";
    case DeviceClass::kStorage: return "storage";
  }
  return "?";
}

std::uint16_t crc16_ccitt(const std::uint8_t* data, std::size_t n) {
  std::uint16_t crc = 0xFFFF;
  for (std::size_t i = 0; i < n; ++i) {
    crc ^= static_cast<std::uint16_t>(data[i]) << 8;
    for (int b = 0; b < 8; ++b)
      crc = (crc & 0x8000) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                           : static_cast<std::uint16_t>(crc << 1);
  }
  return crc;
}

// Layout (little-endian):
//   [0..1]   magic        [2] version   [3] device_class
//   [4]      harvester_kind             [5] storage_kind
//   [6..21]  model (15 chars + NUL)
//   [22..29] rated_power  [30..37] recommended_operating_voltage
//   [38..45] capacity     [46..53] min_voltage   [54..61] max_voltage
//   [62..63] CRC-16 over bytes [0..61]
std::vector<std::uint8_t> ElectronicDatasheet::encode() const {
  std::vector<std::uint8_t> out(kEncodedSize, 0);
  put_u16(out, 0, kMagic);
  out[2] = kVersion;
  out[3] = static_cast<std::uint8_t>(device_class);
  out[4] = static_cast<std::uint8_t>(harvester_kind);
  out[5] = static_cast<std::uint8_t>(storage_kind);
  const std::size_t len = std::min<std::size_t>(model.size(), 15);
  std::memcpy(out.data() + 6, model.data(), len);
  put_f64(out, 22, rated_power.value());
  put_f64(out, 30, recommended_operating_voltage.value());
  put_f64(out, 38, capacity.value());
  put_f64(out, 46, min_voltage.value());
  put_f64(out, 54, max_voltage.value());
  put_u16(out, 62, crc16_ccitt(out.data(), 62));
  return out;
}

std::optional<ElectronicDatasheet> ElectronicDatasheet::decode(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() != kEncodedSize) return std::nullopt;
  if (get_u16(bytes, 0) != kMagic) return std::nullopt;
  if (bytes[2] != kVersion) return std::nullopt;
  if (get_u16(bytes, 62) != crc16_ccitt(bytes.data(), 62)) return std::nullopt;
  if (bytes[3] != static_cast<std::uint8_t>(DeviceClass::kHarvester) &&
      bytes[3] != static_cast<std::uint8_t>(DeviceClass::kStorage))
    return std::nullopt;

  ElectronicDatasheet ds;
  ds.device_class = static_cast<DeviceClass>(bytes[3]);
  ds.harvester_kind = static_cast<harvest::HarvesterKind>(bytes[4]);
  ds.storage_kind = static_cast<storage::StorageKind>(bytes[5]);
  const char* text = reinterpret_cast<const char*>(bytes.data() + 6);
  ds.model.assign(text, strnlen(text, 15));
  ds.rated_power = Watts{get_f64(bytes, 22)};
  ds.recommended_operating_voltage = Volts{get_f64(bytes, 30)};
  ds.capacity = Joules{get_f64(bytes, 38)};
  ds.min_voltage = Volts{get_f64(bytes, 46)};
  ds.max_voltage = Volts{get_f64(bytes, 54)};
  return ds;
}

bool operator==(const ElectronicDatasheet& a, const ElectronicDatasheet& b) {
  return a.device_class == b.device_class && a.model == b.model &&
         a.harvester_kind == b.harvester_kind && a.storage_kind == b.storage_kind &&
         a.rated_power == b.rated_power &&
         a.recommended_operating_voltage == b.recommended_operating_voltage &&
         a.capacity == b.capacity && a.min_voltage == b.min_voltage &&
         a.max_voltage == b.max_voltage;
}

}  // namespace msehsim::bus
