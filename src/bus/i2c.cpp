#include "bus/i2c.hpp"

#include "core/error.hpp"

namespace msehsim::bus {

I2cBus::I2cBus(Params params) : params_(params) {
  require_spec(params_.energy_per_byte.value() >= 0.0,
               "I2C energy per byte must be >= 0");
}

void I2cBus::attach(I2cSlave& slave) {
  const auto [it, inserted] = slaves_.emplace(slave.address(), &slave);
  (void)it;
  require_spec(inserted, "I2C address collision");
}

void I2cBus::detach(std::uint8_t address) { slaves_.erase(address); }

bool I2cBus::present(std::uint8_t address) const {
  return slaves_.contains(address);
}

void I2cBus::bill(std::size_t payload_bytes) {
  // Address byte + register byte + payload.
  energy_ += params_.energy_per_byte * static_cast<double>(payload_bytes + 2);
  ++transactions_;
}

std::optional<std::vector<std::uint8_t>> I2cBus::read(std::uint8_t address,
                                                      std::uint8_t start_register,
                                                      std::size_t count) {
  const auto it = slaves_.find(address);
  if (it == slaves_.end()) {
    bill(0);
    ++naks_;
    return std::nullopt;
  }
  std::vector<std::uint8_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto value =
        it->second->read_register(static_cast<std::uint8_t>(start_register + i));
    if (!value) {
      bill(out.size());
      ++naks_;
      return std::nullopt;
    }
    out.push_back(*value);
  }
  bill(out.size());
  return out;
}

bool I2cBus::write(std::uint8_t address, std::uint8_t start_register,
                   const std::vector<std::uint8_t>& data) {
  const auto it = slaves_.find(address);
  if (it == slaves_.end()) {
    bill(0);
    ++naks_;
    return false;
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (!it->second->write_register(static_cast<std::uint8_t>(start_register + i),
                                    data[i])) {
      bill(i);
      ++naks_;
      return false;
    }
  }
  bill(data.size());
  return true;
}

std::vector<std::uint8_t> I2cBus::scan() const {
  std::vector<std::uint8_t> out;
  out.reserve(slaves_.size());
  for (const auto& [addr, slave] : slaves_) {
    (void)slave;
    out.push_back(addr);
  }
  return out;
}

}  // namespace msehsim::bus
