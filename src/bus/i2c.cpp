#include "bus/i2c.hpp"

#include "core/error.hpp"

namespace msehsim::bus {

I2cBus::I2cBus(Params params)
    : params_(params), fault_rng_(params.fault_seed, stream_key("i2c.fault")) {
  require_spec(params_.energy_per_byte.value() >= 0.0,
               "I2C energy per byte must be >= 0");
}

void I2cBus::attach(I2cSlave& slave) {
  const auto [it, inserted] = slaves_.emplace(slave.address(), &slave);
  (void)it;
  require_spec(inserted, "I2C address collision");
}

void I2cBus::detach(std::uint8_t address) { slaves_.erase(address); }

bool I2cBus::present(std::uint8_t address) const {
  return slaves_.contains(address);
}

void I2cBus::bill(std::size_t payload_bytes) {
  // Address byte + register byte + payload.
  energy_ += params_.energy_per_byte * static_cast<double>(payload_bytes + 2);
  ++transactions_;
}

void I2cBus::inject_nak_burst(std::uint32_t transactions) {
  nak_burst_remaining_ += transactions;
}

void I2cBus::set_bit_error_rate(double rate) {
  require_spec(rate >= 0.0 && rate <= 1.0, "I2C bit-error rate must be in [0,1]");
  bit_error_rate_ = rate;
}

void I2cBus::set_stuck(bool stuck) { stuck_ = stuck; }

bool I2cBus::injected_failure() {
  if (stuck_) {
    bill(0);
    ++naks_;
    ++fault_hits_;
    return true;
  }
  if (nak_burst_remaining_ > 0) {
    --nak_burst_remaining_;
    bill(0);
    ++naks_;
    ++fault_hits_;
    return true;
  }
  return false;
}

std::uint8_t I2cBus::corrupt(std::uint8_t value) {
  if (bit_error_rate_ <= 0.0 || !fault_rng_.bernoulli(bit_error_rate_)) return value;
  ++fault_hits_;
  return value ^ static_cast<std::uint8_t>(1u << fault_rng_.next_below(8));
}

std::optional<std::vector<std::uint8_t>> I2cBus::read(std::uint8_t address,
                                                      std::uint8_t start_register,
                                                      std::size_t count) {
  if (injected_failure()) return std::nullopt;
  const auto it = slaves_.find(address);
  if (it == slaves_.end()) {
    bill(0);
    ++naks_;
    return std::nullopt;
  }
  std::vector<std::uint8_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto value =
        it->second->read_register(static_cast<std::uint8_t>(start_register + i));
    if (!value) {
      bill(out.size());
      ++naks_;
      return std::nullopt;
    }
    out.push_back(corrupt(*value));
  }
  bill(out.size());
  return out;
}

bool I2cBus::write(std::uint8_t address, std::uint8_t start_register,
                   const std::vector<std::uint8_t>& data) {
  if (injected_failure()) return false;
  const auto it = slaves_.find(address);
  if (it == slaves_.end()) {
    bill(0);
    ++naks_;
    return false;
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (!it->second->write_register(static_cast<std::uint8_t>(start_register + i),
                                    corrupt(data[i]))) {
      bill(i);
      ++naks_;
      return false;
    }
  }
  bill(data.size());
  return true;
}

std::vector<std::uint8_t> I2cBus::scan() const {
  std::vector<std::uint8_t> out;
  if (stuck_) return out;  // nothing ACKs while the bus is held low
  out.reserve(slaves_.size());
  for (const auto& [addr, slave] : slaves_) {
    (void)slave;
    out.push_back(addr);
  }
  return out;
}

}  // namespace msehsim::bus
