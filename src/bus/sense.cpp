#include "bus/sense.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace msehsim::bus {

AdcLine::AdcLine(Params params, std::uint64_t seed)
    : params_(params), rng_(seed, stream_key("adc")) {
  require_spec(params_.bits >= 1 && params_.bits <= 24, "ADC bits must be in [1,24]");
  require_spec(params_.full_scale.value() > 0.0, "ADC full scale must be > 0");
  require_spec(params_.energy_per_sample.value() >= 0.0,
               "ADC sample energy must be >= 0");
  require_spec(params_.noise_lsb >= 0.0, "ADC noise must be >= 0");
}

Volts AdcLine::lsb() const {
  return Volts{params_.full_scale.value() / static_cast<double>(1 << params_.bits)};
}

Volts AdcLine::sample(Volts actual) {
  ++samples_;
  energy_ += params_.energy_per_sample;
  const double step = lsb().value();
  const double noisy = actual.value() + rng_.normal(0.0, params_.noise_lsb * step);
  const double clamped = std::clamp(noisy, 0.0, params_.full_scale.value());
  const double code = std::floor(clamped / step + 0.5);
  const double max_code = static_cast<double>((1 << params_.bits) - 1);
  return Volts{std::min(code, max_code) * step};
}

}  // namespace msehsim::bus
