// Smart energy-module bus endpoint.
//
// The register-map abstraction behind two surveyed designs:
//  - System B's plug-and-play modules: an EEPROM datasheet readable over a
//    digital interface (Sec. II.3).
//  - The Sec.-IV "smart harvester" proposal: every energy device carries a
//    low-power microprocessor exposing live telemetry through a *common*
//    interface.
//
// Register map (one byte each):
//   0x00..0x3F  electronic datasheet EEPROM image (64 bytes)
//   0x40        STATUS: bit0 = device active (producing / accepting energy)
//   0x41..0x44  live output power, microwatts, little-endian u32
//   0x45..0x48  live stored energy, millijoules, little-endian u32
//   0x49..0x4C  live terminal voltage, millivolts, little-endian u32
//   0x50        CONTROL: bit0 = enable (writable; e.g. fuel-cell switch-in)
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "bus/datasheet.hpp"
#include "bus/i2c.hpp"

namespace msehsim::bus {

class ModulePort final : public I2cSlave {
 public:
  /// Live telemetry callbacks; unset callbacks read as zero.
  struct Telemetry {
    std::function<bool()> active;
    std::function<Watts()> output_power;
    std::function<Joules()> stored_energy;
    std::function<Volts()> terminal_voltage;
    std::function<void(bool)> set_enabled;
  };

  ModulePort(std::uint8_t address, const ElectronicDatasheet& datasheet,
             Telemetry telemetry);

  [[nodiscard]] std::uint8_t address() const override { return address_; }
  std::optional<std::uint8_t> read_register(std::uint8_t reg) override;
  bool write_register(std::uint8_t reg, std::uint8_t value) override;

  /// Register layout constants (shared with the manager-side driver).
  static constexpr std::uint8_t kRegDatasheet = 0x00;
  static constexpr std::uint8_t kRegStatus = 0x40;
  static constexpr std::uint8_t kRegPowerUw = 0x41;
  static constexpr std::uint8_t kRegEnergyMj = 0x45;
  static constexpr std::uint8_t kRegVoltageMv = 0x49;
  static constexpr std::uint8_t kRegControl = 0x50;

 private:
  [[nodiscard]] std::uint32_t live_u32(std::uint8_t base_reg) const;

  std::uint8_t address_;
  std::vector<std::uint8_t> eeprom_;
  Telemetry telemetry_;
  std::uint8_t control_{0};
};

/// Manager-side driver: reads a full datasheet over the bus.
/// nullopt if the address NAKs or the blob fails CRC.
std::optional<ElectronicDatasheet> read_datasheet(I2cBus& bus, std::uint8_t address);

/// Manager-side driver: reads one live u32 telemetry field.
std::optional<std::uint32_t> read_live_u32(I2cBus& bus, std::uint8_t address,
                                           std::uint8_t base_reg);

}  // namespace msehsim::bus
