// I2C bus emulation with energy accounting.
//
// Survey Sec. II.3: System A's power-unit microcontroller "communicates via
// an I2C bus, allowing the energy status to be monitored and controlled";
// System B modules "communicate via a digital interface to the embedded
// system". The emulation models the protocol-visible behaviour — addressed
// register reads/writes, NAK for absent devices — and charges a per-byte
// energy cost so digital energy-awareness has a measurable overhead
// (the complexity-vs-benefit trade-off of Sec. II.3).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/units.hpp"

namespace msehsim::bus {

/// A device that answers on the bus.
class I2cSlave {
 public:
  virtual ~I2cSlave() = default;

  [[nodiscard]] virtual std::uint8_t address() const = 0;
  /// Register read; returns nullopt to NAK an invalid register.
  virtual std::optional<std::uint8_t> read_register(std::uint8_t reg) = 0;
  /// Register write; returns false to NAK.
  virtual bool write_register(std::uint8_t reg, std::uint8_t value) = 0;
};

class I2cBus {
 public:
  struct Params {
    Joules energy_per_byte{100e-9};  ///< pull-up + driver energy at 100 kHz
  };

  explicit I2cBus(Params params);
  I2cBus() : I2cBus(Params{}) {}

  /// Attaches @p slave (non-owning). Throws SpecError on address collision.
  void attach(I2cSlave& slave);

  /// Detaches whatever answers at @p address; no-op if absent (hot-unplug).
  void detach(std::uint8_t address);

  [[nodiscard]] bool present(std::uint8_t address) const;

  /// Burst register read. nullopt if the address NAKs (absent device) or a
  /// register NAKs mid-burst.
  std::optional<std::vector<std::uint8_t>> read(std::uint8_t address,
                                                std::uint8_t start_register,
                                                std::size_t count);

  /// Burst register write; false on NAK.
  bool write(std::uint8_t address, std::uint8_t start_register,
             const std::vector<std::uint8_t>& data);

  /// Addresses that currently ACK, ascending (bus scan).
  [[nodiscard]] std::vector<std::uint8_t> scan() const;

  [[nodiscard]] Joules energy_consumed() const { return energy_; }
  [[nodiscard]] std::uint64_t transactions() const { return transactions_; }
  [[nodiscard]] std::uint64_t nak_count() const { return naks_; }

 private:
  void bill(std::size_t payload_bytes);

  Params params_;
  std::map<std::uint8_t, I2cSlave*> slaves_;
  Joules energy_{0.0};
  std::uint64_t transactions_{0};
  std::uint64_t naks_{0};
};

}  // namespace msehsim::bus
