// I2C bus emulation with energy accounting.
//
// Survey Sec. II.3: System A's power-unit microcontroller "communicates via
// an I2C bus, allowing the energy status to be monitored and controlled";
// System B modules "communicate via a digital interface to the embedded
// system". The emulation models the protocol-visible behaviour — addressed
// register reads/writes, NAK for absent devices — and charges a per-byte
// energy cost so digital energy-awareness has a measurable overhead
// (the complexity-vs-benefit trade-off of Sec. II.3).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/random.hpp"
#include "core/units.hpp"

namespace msehsim::bus {

/// A device that answers on the bus.
class I2cSlave {
 public:
  virtual ~I2cSlave() = default;

  [[nodiscard]] virtual std::uint8_t address() const = 0;
  /// Register read; returns nullopt to NAK an invalid register.
  virtual std::optional<std::uint8_t> read_register(std::uint8_t reg) = 0;
  /// Register write; returns false to NAK.
  virtual bool write_register(std::uint8_t reg, std::uint8_t value) = 0;
};

class I2cBus {
 public:
  struct Params {
    Joules energy_per_byte{100e-9};  ///< pull-up + driver energy at 100 kHz
    /// Seeds the bit-error stream (src/fault); consumed only while a nonzero
    /// bit-error rate is active, so fault-free runs are unaffected by it.
    std::uint64_t fault_seed{0x12c};
  };

  explicit I2cBus(Params params);
  I2cBus() : I2cBus(Params{}) {}

  /// Attaches @p slave (non-owning). Throws SpecError on address collision.
  void attach(I2cSlave& slave);

  /// Detaches whatever answers at @p address; no-op if absent (hot-unplug).
  void detach(std::uint8_t address);

  [[nodiscard]] bool present(std::uint8_t address) const;

  /// Burst register read. nullopt if the address NAKs (absent device) or a
  /// register NAKs mid-burst.
  std::optional<std::vector<std::uint8_t>> read(std::uint8_t address,
                                                std::uint8_t start_register,
                                                std::size_t count);

  /// Burst register write; false on NAK.
  bool write(std::uint8_t address, std::uint8_t start_register,
             const std::vector<std::uint8_t>& data);

  /// Addresses that currently ACK, ascending (bus scan).
  [[nodiscard]] std::vector<std::uint8_t> scan() const;

  [[nodiscard]] Joules energy_consumed() const { return energy_; }
  [[nodiscard]] std::uint64_t transactions() const { return transactions_; }
  [[nodiscard]] std::uint64_t nak_count() const { return naks_; }

  // ---- Fault injection (src/fault) ---------------------------------------
  // Runtime bus anomalies are modelled behaviour (core/error.hpp): injected
  // faults surface as NAKs and corrupted payloads through the normal return
  // paths, never as exceptions.

  /// The next @p transactions read/write calls NAK regardless of target
  /// (EMI burst, contention). Cumulative with any burst still pending.
  void inject_nak_burst(std::uint32_t transactions);

  /// Each transferred payload byte is corrupted (one bit flipped) with
  /// probability @p rate, drawn from the bus's seeded fault stream. Reads
  /// deliver the corrupted byte; writes store it. Zero disables.
  void set_bit_error_rate(double rate);

  /// Holds the bus electrically stuck: every transaction fails until
  /// released. Models a slave clamping SDA low.
  void set_stuck(bool stuck);
  [[nodiscard]] bool stuck() const { return stuck_; }

  /// Transactions NAKed and bytes corrupted by injected faults.
  [[nodiscard]] std::uint64_t fault_hits() const { return fault_hits_; }

 private:
  void bill(std::size_t payload_bytes);
  /// True if an injected condition (stuck bus / NAK burst) fails this
  /// transaction; consumes one burst token and books the NAK.
  bool injected_failure();
  [[nodiscard]] std::uint8_t corrupt(std::uint8_t value);

  Params params_;
  std::map<std::uint8_t, I2cSlave*> slaves_;
  Joules energy_{0.0};
  std::uint64_t transactions_{0};
  std::uint64_t naks_{0};
  std::uint32_t nak_burst_remaining_{0};
  double bit_error_rate_{0.0};
  bool stuck_{false};
  std::uint64_t fault_hits_{0};
  Pcg32 fault_rng_;
};

}  // namespace msehsim::bus
