// Analog sensing — the minimal energy-monitoring capability.
//
// Survey Sec. II.3: "At their most basic, energy-aware systems may provide
// an analog line to allow the microcontroller to monitor the store
// voltage." AdcLine models that path: an ADC with finite resolution,
// quantization noise, and a per-sample energy cost, so analog monitoring
// has both an accuracy limit and an overhead.
#pragma once

#include <cstdint>

#include "core/random.hpp"
#include "core/units.hpp"

namespace msehsim::bus {

class AdcLine {
 public:
  struct Params {
    int bits{10};
    Volts full_scale{3.3};
    Joules energy_per_sample{2e-6};
    double noise_lsb{0.5};  ///< RMS input-referred noise in LSBs
  };

  AdcLine(Params params, std::uint64_t seed);

  /// Samples @p actual: adds noise, quantizes, clamps to full scale.
  Volts sample(Volts actual);

  [[nodiscard]] Volts lsb() const;
  [[nodiscard]] Joules energy_consumed() const { return energy_; }
  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }

 private:
  Params params_;
  Pcg32 rng_;
  Joules energy_{0.0};
  std::uint64_t samples_{0};
};

}  // namespace msehsim::bus
