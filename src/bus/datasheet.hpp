// Electronic datasheets for plug-and-play energy modules.
//
// Survey Sec. II.3 (System B): "it has an electronic datasheet on each
// energy module which may be individually interrogated to determine their
// properties" — the mechanism that lets the one surveyed system stay
// energy-aware across hardware swaps. Encoded as a fixed-layout binary blob
// (TEDS-style) with magic, version, and CRC-16 so corrupted or foreign
// EEPROM content is rejected rather than misread.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/units.hpp"
#include "harvest/harvester.hpp"
#include "storage/storage.hpp"

namespace msehsim::bus {

enum class DeviceClass : std::uint8_t { kHarvester = 1, kStorage = 2 };

[[nodiscard]] std::string_view to_string(DeviceClass c);

/// Module self-description. One struct covers both classes; fields that do
/// not apply to a class are zero.
struct ElectronicDatasheet {
  DeviceClass device_class{DeviceClass::kHarvester};
  std::string model;  ///< up to 15 characters, truncated on encode

  // Harvester fields.
  harvest::HarvesterKind harvester_kind{harvest::HarvesterKind::kPhotovoltaic};
  Watts rated_power{0.0};
  Volts recommended_operating_voltage{0.0};

  // Storage fields.
  storage::StorageKind storage_kind{storage::StorageKind::kSupercapacitor};
  Joules capacity{0.0};
  Volts min_voltage{0.0};
  Volts max_voltage{0.0};

  /// Serializes to the wire/EEPROM format (fixed 64-byte layout).
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Parses an EEPROM image; empty optional on bad magic/version/CRC.
  static std::optional<ElectronicDatasheet> decode(
      const std::vector<std::uint8_t>& bytes);

  /// Fixed encoded size.
  static constexpr std::size_t kEncodedSize = 64;

  friend bool operator==(const ElectronicDatasheet& a, const ElectronicDatasheet& b);
};

/// CRC-16/CCITT-FALSE over @p data — the checksum the datasheet blobs use.
[[nodiscard]] std::uint16_t crc16_ccitt(const std::uint8_t* data, std::size_t n);

}  // namespace msehsim::bus
