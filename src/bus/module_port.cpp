#include "bus/module_port.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace msehsim::bus {

ModulePort::ModulePort(std::uint8_t address, const ElectronicDatasheet& datasheet,
                       Telemetry telemetry)
    : address_(address), eeprom_(datasheet.encode()), telemetry_(std::move(telemetry)) {
  require_spec(eeprom_.size() == ElectronicDatasheet::kEncodedSize,
               "ModulePort: bad datasheet image");
}

std::uint32_t ModulePort::live_u32(std::uint8_t base_reg) const {
  auto to_u32 = [](double v) {
    return static_cast<std::uint32_t>(
        std::clamp(std::llround(v), 0LL, 0xFFFFFFFFLL));
  };
  switch (base_reg) {
    case kRegPowerUw:
      return telemetry_.output_power ? to_u32(telemetry_.output_power().value() * 1e6)
                                     : 0u;
    case kRegEnergyMj:
      return telemetry_.stored_energy
                 ? to_u32(telemetry_.stored_energy().value() * 1e3)
                 : 0u;
    case kRegVoltageMv:
      return telemetry_.terminal_voltage
                 ? to_u32(telemetry_.terminal_voltage().value() * 1e3)
                 : 0u;
    default:
      return 0u;
  }
}

std::optional<std::uint8_t> ModulePort::read_register(std::uint8_t reg) {
  if (reg < ElectronicDatasheet::kEncodedSize) return eeprom_[reg];
  if (reg == kRegStatus)
    return static_cast<std::uint8_t>(telemetry_.active && telemetry_.active() ? 1 : 0);
  if (reg >= kRegPowerUw && reg < kRegPowerUw + 4)
    return static_cast<std::uint8_t>(live_u32(kRegPowerUw) >>
                                     (8 * (reg - kRegPowerUw)));
  if (reg >= kRegEnergyMj && reg < kRegEnergyMj + 4)
    return static_cast<std::uint8_t>(live_u32(kRegEnergyMj) >>
                                     (8 * (reg - kRegEnergyMj)));
  if (reg >= kRegVoltageMv && reg < kRegVoltageMv + 4)
    return static_cast<std::uint8_t>(live_u32(kRegVoltageMv) >>
                                     (8 * (reg - kRegVoltageMv)));
  if (reg == kRegControl) return control_;
  return std::nullopt;
}

bool ModulePort::write_register(std::uint8_t reg, std::uint8_t value) {
  if (reg == kRegControl) {
    control_ = value;
    if (telemetry_.set_enabled) telemetry_.set_enabled((value & 1) != 0);
    return true;
  }
  return false;  // datasheet EEPROM and telemetry are read-only over the bus
}

std::optional<ElectronicDatasheet> read_datasheet(I2cBus& bus, std::uint8_t address) {
  const auto raw = bus.read(address, ModulePort::kRegDatasheet,
                            ElectronicDatasheet::kEncodedSize);
  if (!raw) return std::nullopt;
  return ElectronicDatasheet::decode(*raw);
}

std::optional<std::uint32_t> read_live_u32(I2cBus& bus, std::uint8_t address,
                                           std::uint8_t base_reg) {
  const auto raw = bus.read(address, base_reg, 4);
  if (!raw) return std::nullopt;
  return static_cast<std::uint32_t>((*raw)[0]) |
         (static_cast<std::uint32_t>((*raw)[1]) << 8) |
         (static_cast<std::uint32_t>((*raw)[2]) << 16) |
         (static_cast<std::uint32_t>((*raw)[3]) << 24);
}

}  // namespace msehsim::bus
