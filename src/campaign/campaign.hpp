// Parallel campaign engine for year-scale, multi-seed studies.
//
// A Campaign fans the full (platform-variant x scenario x seed) grid of
// independent run_platform jobs across a std::thread pool. Every job builds
// its OWN platform, environment, and (optional) fault injector through the
// factories in the spec — no mutable state is shared between workers, which
// is the entire thread-safety model: Platform, Harvester (and its MPP
// cache), and the seeded RNG streams are all plain single-threaded state, so
// isolation by construction beats locking on every hot-path access. The one
// shared object is immutable: with compile_traces on, the (scenario, seed)
// ambient timeline is compiled once into an env::CompiledTrace and every
// platform variant's job replays it through its own CompiledEnvironment
// cursor. Results land in a preallocated slot per grid point, so their order
// is the deterministic grid order (platform-major, then scenario, then seed)
// regardless of how the pool schedules the jobs — to_string(RunResult) of
// every job is byte-identical whether the campaign ran on 1 thread or N,
// with trace compilation on or off.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/units.hpp"
#include "env/compiled_trace.hpp"
#include "env/trace_cache.hpp"
#include "obs/metrics.hpp"
#include "env/environment.hpp"
#include "fault/injector.hpp"
#include "fault/schedule.hpp"
#include "systems/platform.hpp"
#include "systems/runner.hpp"

namespace msehsim::campaign {

/// Builds a fresh platform for one job. Called once per job, possibly from a
/// worker thread; must not touch shared mutable state.
using PlatformFactory =
    std::function<std::unique_ptr<systems::Platform>(std::uint64_t seed)>;

/// Builds a fresh environment for one job.
using EnvironmentFactory =
    std::function<std::unique_ptr<env::EnvironmentModel>(std::uint64_t seed)>;

/// Builds (and schedules) a fresh fault injector against the job's own
/// platform. Optional; a default-constructed function means no faults.
using InjectorFactory = std::function<std::unique_ptr<fault::FaultInjector>(
    std::uint64_t seed, systems::Platform& platform)>;

/// InjectorFactory driven by a declarative fault::Schedule: each job
/// compiles the shared (immutable) schedule against its own platform's
/// injectable surface with its own seed, so a campaign and a standalone
/// experiment binary replay the same schedule file bit-identically. The
/// schedule must outlive the campaign (the shared_ptr keeps it).
[[nodiscard]] InjectorFactory schedule_injector(
    std::shared_ptr<const fault::Schedule> schedule);

/// One axis point of the platform grid: a named way to build a system.
struct PlatformVariant {
  std::string name;
  PlatformFactory make;
};

/// One axis point of the scenario grid: environment + run configuration.
struct Scenario {
  std::string name;
  EnvironmentFactory environment;
  Seconds duration{86400.0};
  /// Per-run options. recorder and injector must be null — a recorder cannot
  /// be shared across jobs, and injectors are created per job via the
  /// factory below.
  systems::RunOptions options{};
  InjectorFactory injector{};
  /// Stable generator identity for the persistent trace cache; empty (the
  /// default) falls back to `name`. The daemon sets this to the preset kind
  /// so two requests labelling the same generator differently still share
  /// one cached timeline — and two requests reusing a label for *different*
  /// generators can never collide on it.
  std::string trace_key;
};

/// Default for CampaignSpec::lane_width: the MSEHSIM_LANE_WIDTH environment
/// variable (read once per process), else 8.
[[nodiscard]] unsigned default_lane_width();

/// Strict MSEHSIM_LANE_WIDTH interpretation (exposed for the bad-input
/// matrix tests): @p text validated by core/fmt's full-consumption
/// parse_unsigned. nullptr (unset) silently yields @p fallback; anything
/// invalid — garbage, trailing junk, zero, > 256 — warns once on stderr and
/// yields @p fallback, so a daemon misconfiguration is loud instead of
/// silently reshaping every request's batching.
[[nodiscard]] unsigned lane_width_from_env(const char* text,
                                           unsigned fallback = 8);

struct CampaignSpec {
  std::vector<PlatformVariant> platforms;
  std::vector<Scenario> scenarios;
  std::vector<std::uint64_t> seeds;
  /// Worker threads; 0 picks std::thread::hardware_concurrency(). The
  /// thread count never changes any result byte, only the wall clock.
  unsigned threads{0};
  /// Compile each (scenario, seed) ambient timeline once into an immutable
  /// structure-of-arrays env::CompiledTrace and replay it through a per-job
  /// CompiledEnvironment cursor, instead of re-synthesizing the channel
  /// stack in every job. Every platform variant on the same (scenario, seed)
  /// shares one snapshot. Kill switch for determinism audits: results are
  /// byte-identical either way.
  bool compile_traces{true};
  /// Directory for the persistent env::TraceCache. Empty (the default)
  /// keeps today's in-memory-only behavior. Non-empty: each (scenario,
  /// seed) snapshot is probed on disk first — a valid entry is
  /// memory-mapped read-only instead of synthesized, and fresh compiles are
  /// written back for the next run. Results are byte-identical either way;
  /// the cache can only trade disk for compile time. Keyed by scenario
  /// *name* (plus seed/dt/duration/library version), so scenarios whose
  /// generator recipe changes must change name or directory. Only consulted
  /// when compile_traces is on.
  std::string trace_cache_dir;
  /// Byte cap for trace_cache_dir (oldest entries evicted after each
  /// store); 0 means unbounded.
  std::uint64_t trace_cache_max_bytes{0};
  /// A caller-owned persistent trace cache shared across campaigns (the
  /// daemon's: one warm cache for every request). When set it wins over
  /// trace_cache_dir, and its hit/miss/eviction counters accumulate over
  /// the cache's lifetime, not one campaign's. Only consulted when
  /// compile_traces is on.
  std::shared_ptr<env::TraceCache> shared_trace_cache;
  /// Pop jobs longest-expected-duration-first (expected steps =
  /// duration / dt) so a long scenario cannot strand the pool tail on one
  /// worker. Results stay in grid order; this flag never changes a byte.
  bool longest_first{true};
  /// Lanes per batched work unit. Jobs that share a (scenario, seed)
  /// compiled trace — i.e. the platform-variant axis — are grouped into
  /// blocks of up to this many lanes and advanced in lockstep by
  /// systems::BatchRunner: the ambient slot is decoded once per step for
  /// the whole block and every component call dispatches through
  /// pre-resolved concrete-type tags. 1 runs the exact legacy one-job-at-a-
  /// time path; any width produces byte-identical results (the batched
  /// kernel's contract), so this knob only trades scheduling granularity
  /// for per-step cost. Requires compile_traces; with it off, the legacy
  /// path is used regardless. The default honors the MSEHSIM_LANE_WIDTH
  /// environment variable (CI runs the whole suite at widths 1 and 8 to
  /// prove the byte contract under sanitizers); explicit assignment always
  /// wins.
  unsigned lane_width{default_lane_width()};
  /// Escape hatch: let the batched SoA fast path use FMA contraction and
  /// reassociated reductions in its strided step body (see
  /// systems::RunOptions::allow_reassociation). Off by default — the
  /// default path is byte-identical at every lane_width and thread count;
  /// turning this on surrenders bit-exactness for extra vectorization
  /// headroom, with the energy ledger's <1e-9 relative-residual gate still
  /// bounding the drift. Also settable per scenario via Scenario::options;
  /// this campaign-wide flag ORs into every block.
  bool allow_reassociation{false};
};

/// One grid point's outcome, tagged with its coordinates.
struct JobResult {
  std::size_t platform_index{0};
  std::size_t scenario_index{0};
  std::size_t seed_index{0};
  std::uint64_t seed{0};
  systems::RunResult result{};
};

/// One grid point flagged by the energy-ledger leak detector: its
/// storage_loss grew superlinearly in duration (second-half loss more than
/// twice the first-half loss), the signature of a storage stack that bleeds
/// faster the longer it runs — a mis-set leakage multiplier, an unbounded
/// fade schedule — rather than a constant-rate cost.
struct LeakWarning {
  std::size_t platform_index{0};
  std::size_t scenario_index{0};
  std::size_t seed_index{0};
  std::uint64_t seed{0};
  double first_half_loss_j{0.0};
  double second_half_loss_j{0.0};
};

/// mean / stddev (population) / min / max of one field over a set of jobs.
struct FieldStats {
  double mean{0.0};
  double stddev{0.0};
  double min{0.0};
  double max{0.0};
};

/// The authoritative field table lives with RunResult itself
/// (systems::run_result_fields) so to_string, the exporters, and the
/// metrics snapshot can never disagree; campaign re-exports it under its
/// historical names.
using RunResultField = systems::RunResultField;

/// The full field table (duration through fault counters and ledger rows),
/// in to_string(RunResult) order.
[[nodiscard]] inline const std::vector<RunResultField>& run_result_fields() {
  return systems::run_result_fields();
}

/// Aggregates @p get over @p jobs. Plain sequential code over the
/// deterministic grid order, so aggregates are as reproducible as the runs.
[[nodiscard]] FieldStats field_stats(const std::vector<JobResult>& jobs,
                                     double (*get)(const systems::RunResult&));

class Campaign {
 public:
  explicit Campaign(CampaignSpec spec);

  /// Runs every job in the grid (platform-major, then scenario, then seed)
  /// and returns the results in exactly that order. Runs once; subsequent
  /// calls return the stored results. Throws SpecError if a job's factory or
  /// run rejects its configuration (the first failing job in grid order
  /// wins), after all workers have drained.
  const std::vector<JobResult>& run();

  [[nodiscard]] bool ran() const { return ran_; }
  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t job_count() const {
    return spec_.platforms.size() * spec_.scenarios.size() * spec_.seeds.size();
  }

  /// Results in grid order (valid after run()).
  [[nodiscard]] const std::vector<JobResult>& results() const;

  /// The job at one grid coordinate (valid after run()).
  [[nodiscard]] const JobResult& at(std::size_t platform, std::size_t scenario,
                                    std::size_t seed_index) const;

  /// Per-(platform, scenario) cell statistics across seeds: one FieldStats
  /// per run_result_fields() entry.
  [[nodiscard]] std::vector<FieldStats> seed_stats(std::size_t platform,
                                                   std::size_t scenario) const;

  /// Ambient timelines actually compiled (0 with compile_traces off). Every
  /// platform variant shares the same (scenario, seed) snapshot, so after a
  /// full run this equals scenarios x seeds however many variants ran —
  /// minus the slots served from the persistent cache, which count under
  /// trace_cache_stats().hits instead.
  [[nodiscard]] std::uint64_t trace_compiles() const {
    return trace_compiles_.load(std::memory_order_relaxed);
  }

  /// Persistent-cache counters (all zero when trace_cache_dir is empty).
  [[nodiscard]] env::TraceCacheStats trace_cache_stats() const;

  /// Batched lane blocks executed (0 when lane_width <= 1 or compile_traces
  /// is off). With batching on, after a full run this is the grid's
  /// (scenario x seed) pairs times ceil(platforms / lane_width).
  [[nodiscard]] std::uint64_t lane_blocks() const {
    return lane_blocks_.load(std::memory_order_relaxed);
  }

  /// Grid points flagged by the superlinear storage-loss detector, in grid
  /// order (valid after run(); empty when no run leaked). The probe is the
  /// ledger's mid-run snapshot (storage_loss_first_half_j), so detection is
  /// free — no extra instrumentation ran in the jobs.
  [[nodiscard]] const std::vector<LeakWarning>& leak_warnings() const;

  /// Every job's metrics_snapshot merged in grid order (counters and
  /// histograms sum, gauges keep their max), plus campaign-level counters
  /// (campaign.jobs, campaign.trace_compiles). Valid after run();
  /// deterministic across thread counts because the merge walks the stored
  /// grid order, never the scheduling order.
  [[nodiscard]] obs::MetricsSnapshot metrics() const;

 private:
  struct TraceSlot {
    std::once_flag once;
    std::shared_ptr<const env::CompiledTrace> trace;
    std::string error;
  };

  [[nodiscard]] std::size_t flat_index(std::size_t platform,
                                       std::size_t scenario,
                                       std::size_t seed_index) const;
  /// Lazily compiles (or waits for) the (scenario, seed) snapshot; rethrows
  /// a captured compile failure for every job that needed the slot.
  [[nodiscard]] std::shared_ptr<const env::CompiledTrace> compiled_trace(
      std::size_t scenario_index, std::size_t seed_index);
  void run_job(JobResult& job);

  /// One schedulable work unit in batched mode: up to lane_width jobs that
  /// share a (scenario, seed) compiled trace, identified by their flat
  /// result indices.
  struct LaneBlock {
    std::size_t scenario_index{0};
    std::size_t seed_index{0};
    std::vector<std::size_t> grid_indices;
  };
  /// Builds every lane of @p block and runs them through one BatchRunner.
  /// Failures are written into @p errors at the failing grid index (lane
  /// setup) or every index of the block (the shared run), matching the
  /// first-in-grid-order reporting of run().
  void run_block(const LaneBlock& block, std::vector<std::string>& errors);
  void detect_leaks();

  CampaignSpec spec_;
  std::vector<JobResult> results_;
  std::vector<LeakWarning> leak_warnings_;
  // once_flag is neither movable nor copyable, hence the raw array.
  std::unique_ptr<TraceSlot[]> trace_slots_;
  std::shared_ptr<env::TraceCache> trace_cache_;
  std::atomic<std::uint64_t> trace_compiles_{0};
  std::atomic<std::uint64_t> lane_blocks_{0};
  // SoA kernel counters summed over every lane block (systems::soa::
  // SoaCounters fields, accumulated atomically because blocks run on the
  // pool). Surface through metrics() as campaign.soa.* rows only — like the
  // trace-cache rows they are run-variant (lane width and scheduling change
  // them), so they never join the byte-stable result fold.
  std::atomic<std::uint64_t> soa_steps_{0};
  std::atomic<std::uint64_t> soa_quiet_steps_{0};
  std::atomic<std::uint64_t> soa_lane_steps_{0};
  std::atomic<std::uint64_t> soa_resident_lane_steps_{0};
  std::atomic<std::uint64_t> soa_exit_event_due_{0};
  std::atomic<std::uint64_t> soa_exit_not_resident_{0};
  std::atomic<std::uint64_t> soa_thermal_latched_{0};
  bool ran_{false};
};

}  // namespace msehsim::campaign
