// Campaign result exporters.
//
// Serializes a finished Campaign grid — per-job RunResults and the
// per-(platform, scenario) seed statistics — to CSV and JSON for offline
// analysis. The CSV flavors are fully numeric (grid coordinates as indices,
// every value in the locale-independent shortest round-trip form of
// core/fmt) so core's parse_csv round-trips them bit-exactly; the JSON
// carries the human-readable platform/scenario names alongside.
#pragma once

#include <string>

#include "campaign/campaign.hpp"

namespace msehsim::campaign {

/// One row per job in grid order:
/// `platform,scenario,seed_index,seed,<run_result_fields...>`.
/// Numeric-only (indices, not names) so parse_csv round-trips it.
[[nodiscard]] std::string results_csv(const Campaign& campaign);

/// One row per (platform, scenario) cell:
/// `platform,scenario,<field>.mean,<field>.stddev,<field>.min,<field>.max`
/// for every run_result_fields() entry, aggregated across seeds.
[[nodiscard]] std::string seed_stats_csv(const Campaign& campaign);

/// The whole campaign as one JSON document: platform/scenario/seed axes by
/// name, the count of materialized timelines (live compiles plus persistent
/// trace-cache hits, so the document is byte-identical across cache
/// states), every job's fields plus its per-source ledger rows, and the
/// per-cell seed statistics.
[[nodiscard]] std::string results_json(const Campaign& campaign);

/// Campaign::metrics() as two-column `metric,value` CSV — every job's
/// metrics snapshot merged in grid order plus the campaign-level counters
/// (campaign.jobs, campaign.trace_compiles). Deterministic across thread
/// counts.
[[nodiscard]] std::string metrics_csv(const Campaign& campaign);

/// Every job's run-health timeline (RunOptions::timeline_dt) as one JSON
/// document: grid coordinates plus the obs::Timeline json() per job that
/// carries one. Jobs without a timeline (sampling off) are omitted, so the
/// document is `{"timelines": []}` for an unsampled campaign. Deterministic
/// across thread counts and lane widths except the documented soa_resident
/// column (width-dependent by design).
[[nodiscard]] std::string timelines_json(const Campaign& campaign);

/// File-writing conveniences (throw SpecError on I/O failure).
void write_results_csv(const Campaign& campaign, const std::string& path);
void write_seed_stats_csv(const Campaign& campaign, const std::string& path);
void write_results_json(const Campaign& campaign, const std::string& path);
void write_metrics_csv(const Campaign& campaign, const std::string& path);
void write_timelines_json(const Campaign& campaign, const std::string& path);

}  // namespace msehsim::campaign
