#include "campaign/export.hpp"

#include <cstdio>
#include <fstream>

#include "core/error.hpp"
#include "core/fmt.hpp"
#include "obs/trace.hpp"

namespace msehsim::campaign {

namespace {

/// Same locale-independent shortest round-trip format as
/// to_string(RunResult): every double survives parse_csv bit-exactly, and
/// the bytes cannot vary with the process locale (snprintf %g under a
/// de_DE-style LC_NUMERIC emitted ',' separators — invalid CSV/JSON).
std::string num(double v) {
  return format_double(v);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream file(path, std::ios::binary);
  require_spec(file.good(), "campaign export: cannot open '" + path + "'");
  file << text;
  require_spec(file.good(), "campaign export: write to '" + path + "' failed");
}

}  // namespace

std::string results_csv(const Campaign& campaign) {
  OBS_SPAN("campaign.export_results_csv", "campaign");
  const auto& fields = run_result_fields();
  std::string out = "platform,scenario,seed_index,seed";
  for (const auto& f : fields) {
    out += ',';
    out += f.name;
  }
  out += '\n';
  for (const auto& job : campaign.results()) {
    out += num(static_cast<double>(job.platform_index));
    out += ',';
    out += num(static_cast<double>(job.scenario_index));
    out += ',';
    out += num(static_cast<double>(job.seed_index));
    out += ',';
    out += num(static_cast<double>(job.seed));
    for (const auto& f : fields) {
      out += ',';
      out += num(f.get(job.result));
    }
    out += '\n';
  }
  return out;
}

std::string seed_stats_csv(const Campaign& campaign) {
  const auto& fields = run_result_fields();
  std::string out = "platform,scenario";
  for (const auto& f : fields) {
    for (const char* stat : {".mean", ".stddev", ".min", ".max"}) {
      out += ',';
      out += f.name;
      out += stat;
    }
  }
  out += '\n';
  const auto& spec = campaign.spec();
  // Zero seeds means every (platform, scenario) cell has zero samples and
  // no statistics to report: a headers-only document, not rows of NaN.
  if (spec.seeds.empty()) return out;
  for (std::size_t p = 0; p < spec.platforms.size(); ++p) {
    for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
      const auto stats = campaign.seed_stats(p, s);
      out += num(static_cast<double>(p));
      out += ',';
      out += num(static_cast<double>(s));
      for (const auto& fs : stats) {
        for (const double v : {fs.mean, fs.stddev, fs.min, fs.max}) {
          out += ',';
          out += num(v);
        }
      }
      out += '\n';
    }
  }
  return out;
}

std::string results_json(const Campaign& campaign) {
  OBS_SPAN("campaign.export_results_json", "campaign");
  const auto& fields = run_result_fields();
  const auto& spec = campaign.spec();
  std::string out = "{\n  \"platforms\": [";
  for (std::size_t p = 0; p < spec.platforms.size(); ++p) {
    if (p) out += ", ";
    out += '"' + json_escape(spec.platforms[p].name) + '"';
  }
  out += "],\n  \"scenarios\": [";
  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    if (s) out += ", ";
    out += '"' + json_escape(spec.scenarios[s].name) + '"';
  }
  out += "],\n  \"seeds\": [";
  for (std::size_t k = 0; k < spec.seeds.size(); ++k) {
    if (k) out += ", ";
    out += num(static_cast<double>(spec.seeds[k]));
  }
  // Timelines materialized, regardless of provenance: live compiles plus
  // persistent-cache hits. Counting hits in keeps this document
  // byte-identical between a cold run (all compiles) and a warm one (all
  // hits) — the export byte-identity contract must not see cache state.
  out += "],\n  \"trace_compiles\": " +
         num(static_cast<double>(campaign.trace_compiles() +
                                 campaign.trace_cache_stats().hits));
  out += ",\n  \"jobs\": [";
  bool first_job = true;
  for (const auto& job : campaign.results()) {
    out += first_job ? "\n" : ",\n";
    first_job = false;
    out += "    {\"platform\": " + num(static_cast<double>(job.platform_index)) +
           ", \"scenario\": " + num(static_cast<double>(job.scenario_index)) +
           ", \"seed_index\": " + num(static_cast<double>(job.seed_index)) +
           ", \"seed\": " + num(static_cast<double>(job.seed)) + ", \"fields\": {";
    for (std::size_t f = 0; f < fields.size(); ++f) {
      if (f) out += ", ";
      out += '"' + json_escape(fields[f].name) +
             "\": " + num(fields[f].get(job.result));
    }
    out += "}, \"sources\": [";
    const auto& sources = job.result.ledger.sources;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const auto& src = sources[i];
      if (i) out += ", ";
      out += "{\"name\": \"" + json_escape(src.name) + "\", \"kind\": \"" +
             json_escape(src.kind) + "\", \"transducer_j\": " +
             num(src.transducer_j) + ", \"conversion_loss_j\": " +
             num(src.conversion_loss_j) + ", \"tracker_overhead_j\": " +
             num(src.tracker_overhead_j) + ", \"delivered_j\": " +
             num(src.delivered_j) + ", \"share\": " + num(src.share) +
             ", \"mpp_cache_hits\": " +
             num(static_cast<double>(src.mpp_cache_hits)) +
             ", \"mpp_recomputes\": " +
             num(static_cast<double>(src.mpp_recomputes)) + '}';
    }
    out += "]}";
  }
  out += "\n  ],\n  \"seed_stats\": [";
  bool first_cell = true;
  // Mirror seed_stats_csv: zero seeds -> zero cells (stats over an empty
  // sample set would render as NaN, which JSON cannot carry).
  for (std::size_t p = 0; !spec.seeds.empty() && p < spec.platforms.size();
       ++p) {
    for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
      out += first_cell ? "\n" : ",\n";
      first_cell = false;
      const auto stats = campaign.seed_stats(p, s);
      out += "    {\"platform\": " + num(static_cast<double>(p)) +
             ", \"scenario\": " + num(static_cast<double>(s)) + ", \"fields\": {";
      for (std::size_t f = 0; f < fields.size(); ++f) {
        if (f) out += ", ";
        out += '"' + json_escape(fields[f].name) + "\": {\"mean\": " +
               num(stats[f].mean) + ", \"stddev\": " + num(stats[f].stddev) +
               ", \"min\": " + num(stats[f].min) +
               ", \"max\": " + num(stats[f].max) + '}';
      }
      out += "}}";
    }
  }
  out += "\n  ]\n}\n";
  return out;
}

void write_results_csv(const Campaign& campaign, const std::string& path) {
  write_text(path, results_csv(campaign));
}

void write_seed_stats_csv(const Campaign& campaign, const std::string& path) {
  write_text(path, seed_stats_csv(campaign));
}

void write_results_json(const Campaign& campaign, const std::string& path) {
  write_text(path, results_json(campaign));
}

std::string metrics_csv(const Campaign& campaign) {
  OBS_SPAN("campaign.export_metrics_csv", "campaign");
  return campaign.metrics().csv();
}

void write_metrics_csv(const Campaign& campaign, const std::string& path) {
  write_text(path, metrics_csv(campaign));
}

std::string timelines_json(const Campaign& campaign) {
  OBS_SPAN("campaign.export_timelines", "campaign");
  std::string out = "{\n  \"timelines\": [";
  bool first = true;
  for (const auto& job : campaign.results()) {
    if (job.result.timeline == nullptr) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"platform\": " + num(static_cast<double>(job.platform_index)) +
           ", \"scenario\": " + num(static_cast<double>(job.scenario_index)) +
           ", \"seed_index\": " + num(static_cast<double>(job.seed_index)) +
           ", \"seed\": " + num(static_cast<double>(job.seed)) +
           ", \"timeline\": " + job.result.timeline->json() + '}';
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void write_timelines_json(const Campaign& campaign, const std::string& path) {
  write_text(path, timelines_json(campaign));
}

}  // namespace msehsim::campaign
