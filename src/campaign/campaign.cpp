#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <thread>

#include "core/error.hpp"
#include "core/fmt.hpp"
#include "obs/trace.hpp"
#include "systems/batch_runner.hpp"

namespace msehsim::campaign {

unsigned lane_width_from_env(const char* text, unsigned fallback) {
  if (text == nullptr) return fallback;
  // strtoul's prefix parse accepted "8garbage" as 8 and collapsed "garbage",
  // "", "0x8", and an overflowing "99999999999999999999" alike into silent
  // defaults or ULONG_MAX-sized widths — in a daemon that misconfigures
  // every request for the life of the process. Full-consumption parsing plus
  // an explicit range gate makes every bad value loud and safe.
  constexpr unsigned long long kMaxLaneWidth = 256;
  const auto parsed = parse_unsigned(text);
  if (!parsed.has_value() || *parsed == 0 || *parsed > kMaxLaneWidth) {
    std::fprintf(stderr,
                 "msehsim: ignoring invalid MSEHSIM_LANE_WIDTH=\"%s\" "
                 "(want an integer in [1, %llu]); using %u\n",
                 text, kMaxLaneWidth, fallback);
    return fallback;
  }
  return static_cast<unsigned>(*parsed);
}

unsigned default_lane_width() {
  static const unsigned width =
      lane_width_from_env(std::getenv("MSEHSIM_LANE_WIDTH"));
  return width;
}

FieldStats field_stats(const std::vector<JobResult>& jobs,
                       double (*get)(const systems::RunResult&)) {
  FieldStats s;
  if (jobs.empty()) return s;
  double sum = 0.0;
  s.min = get(jobs.front().result);
  s.max = s.min;
  for (const auto& job : jobs) {
    const double v = get(job.result);
    sum += v;
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
  }
  const auto n = static_cast<double>(jobs.size());
  s.mean = sum / n;
  double ss = 0.0;
  for (const auto& job : jobs) {
    const double d = get(job.result) - s.mean;
    ss += d * d;
  }
  s.stddev = std::sqrt(ss / n);
  return s;
}

Campaign::Campaign(CampaignSpec spec) : spec_(std::move(spec)) {
  // An empty axis is a legal zero-job grid, not an error: the daemon
  // forwards user specs verbatim, and an empty request must produce valid
  // headers-only exports and a lint-clean metrics scrape, the same way an
  // empty SQL result set is still a table.
  for (const auto& p : spec_.platforms)
    require_spec(static_cast<bool>(p.make),
                 "Campaign platform variant '" + p.name + "' has no factory");
  if (spec_.compile_traces) {
    if (spec_.shared_trace_cache) {
      trace_cache_ = spec_.shared_trace_cache;
    } else if (!spec_.trace_cache_dir.empty()) {
      trace_cache_ = std::make_shared<env::TraceCache>(
          spec_.trace_cache_dir, spec_.trace_cache_max_bytes);
    }
  }
  for (const auto& s : spec_.scenarios) {
    require_spec(static_cast<bool>(s.environment),
                 "Campaign scenario '" + s.name + "' has no environment factory");
    require_spec(s.duration.value() > 0.0,
                 "Campaign scenario '" + s.name + "' needs positive duration");
    require_spec(s.options.dt.value() > 0.0,
                 "Campaign scenario '" + s.name + "' needs positive dt");
    require_spec(s.options.recorder == nullptr,
                 "Campaign scenario '" + s.name +
                     "' must not share a TraceRecorder across jobs");
    require_spec(s.options.injector == nullptr,
                 "Campaign scenario '" + s.name +
                     "' must use the injector factory, not a shared injector");
  }
}

std::size_t Campaign::flat_index(std::size_t platform, std::size_t scenario,
                                 std::size_t seed_index) const {
  return (platform * spec_.scenarios.size() + scenario) * spec_.seeds.size() +
         seed_index;
}

std::shared_ptr<const env::CompiledTrace> Campaign::compiled_trace(
    std::size_t scenario_index, std::size_t seed_index) {
  auto& slot = trace_slots_[scenario_index * spec_.seeds.size() + seed_index];
  std::call_once(slot.once, [&] {
    OBS_SPAN("campaign.compile_trace", "campaign");
    try {
      const auto& scenario = spec_.scenarios[scenario_index];
      const env::TraceCacheKey key{
          scenario.trace_key.empty() ? scenario.name : scenario.trace_key,
          spec_.seeds[seed_index], scenario.options.dt, scenario.duration};
      if (trace_cache_) {
        // A mapped hit skips environment construction entirely — that is
        // the win. Any invalid or missing entry falls through to a live
        // compile below, so a corrupt cache can never change a result.
        slot.trace = trace_cache_->load(key);
        if (slot.trace) return;
      }
      auto source = scenario.environment(spec_.seeds[seed_index]);
      require_spec(source != nullptr,
                   "Campaign environment factory '" + scenario.name +
                       "' returned null");
      slot.trace = env::CompiledTrace::compile(*source, scenario.options.dt,
                                               scenario.duration);
      trace_compiles_.fetch_add(1, std::memory_order_relaxed);
      if (trace_cache_) trace_cache_->store(key, *slot.trace);
    } catch (const std::exception& e) {
      slot.error = e.what();
    } catch (...) {
      slot.error = "unknown error compiling trace";
    }
  });
  if (!slot.error.empty()) throw SpecError(slot.error);
  return slot.trace;
}

void Campaign::run_job(JobResult& job) {
  const auto& variant = spec_.platforms[job.platform_index];
  const auto& scenario = spec_.scenarios[job.scenario_index];

  // Coarse span, one per job: always recorded while tracing is on. The
  // args identify the grid point so a Perfetto timeline reads directly as
  // the schedule. Wall-clock only — never feeds any result byte.
  obs::Span job_span{"campaign.job", "campaign",
                     "\"platform\": \"" + variant.name + "\", \"scenario\": \"" +
                         scenario.name +
                         "\", \"seed\": " + std::to_string(job.seed)};

  auto platform = variant.make(job.seed);
  require_spec(platform != nullptr,
               "Campaign platform factory '" + variant.name + "' returned null");
  std::unique_ptr<env::EnvironmentModel> environment;
  if (spec_.compile_traces) {
    environment = std::make_unique<env::CompiledEnvironment>(
        compiled_trace(job.scenario_index, job.seed_index));
  } else {
    environment = scenario.environment(job.seed);
    require_spec(environment != nullptr,
                 "Campaign environment factory '" + scenario.name +
                     "' returned null");
  }

  systems::RunOptions options = scenario.options;
  std::unique_ptr<fault::FaultInjector> injector;
  if (scenario.injector) {
    injector = scenario.injector(job.seed, *platform);
    options.injector = injector.get();
  }
  job.result =
      systems::run_platform(*platform, *environment, scenario.duration, options);
}

void Campaign::run_block(const LaneBlock& block,
                         std::vector<std::string>& errors) {
  const auto& scenario = spec_.scenarios[block.scenario_index];
  obs::Span block_span{
      "campaign.block", "campaign",
      "\"scenario\": \"" + scenario.name + "\", \"seed\": " +
          std::to_string(spec_.seeds[block.seed_index]) +
          ", \"lanes\": " + std::to_string(block.grid_indices.size())};

  std::shared_ptr<const env::CompiledTrace> trace;
  try {
    trace = compiled_trace(block.scenario_index, block.seed_index);
  } catch (const std::exception& e) {
    for (std::size_t i : block.grid_indices) errors[i] = e.what();
    return;
  }

  // Per-lane construction failures are attributed to the exact grid point
  // whose factory rejected its configuration, then the block is abandoned:
  // any error empties the campaign's results anyway, so only the message's
  // coordinates matter.
  std::vector<std::unique_ptr<systems::Platform>> platforms;
  std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
  platforms.reserve(block.grid_indices.size());
  injectors.reserve(block.grid_indices.size());
  systems::RunOptions block_options = scenario.options;
  if (spec_.allow_reassociation) block_options.allow_reassociation = true;
  systems::BatchRunner runner(trace, scenario.duration, block_options);
  for (std::size_t i : block.grid_indices) {
    const auto& job = results_[i];
    const auto& variant = spec_.platforms[job.platform_index];
    try {
      auto platform = variant.make(job.seed);
      require_spec(platform != nullptr, "Campaign platform factory '" +
                                            variant.name + "' returned null");
      std::unique_ptr<fault::FaultInjector> injector;
      if (scenario.injector) injector = scenario.injector(job.seed, *platform);
      runner.add_lane(*platform, injector.get());
      platforms.push_back(std::move(platform));
      injectors.push_back(std::move(injector));
    } catch (const std::exception& e) {
      errors[i] = e.what();
      return;
    } catch (...) {
      errors[i] = "unknown error";
      return;
    }
  }

  try {
    std::vector<systems::RunResult> lane_results = runner.run();
    for (std::size_t lane = 0; lane < block.grid_indices.size(); ++lane)
      results_[block.grid_indices[lane]].result = std::move(lane_results[lane]);
    lane_blocks_.fetch_add(1, std::memory_order_relaxed);
    const systems::soa::SoaCounters& sc = runner.soa_counters();
    soa_steps_.fetch_add(sc.steps, std::memory_order_relaxed);
    soa_quiet_steps_.fetch_add(sc.quiet_steps, std::memory_order_relaxed);
    soa_lane_steps_.fetch_add(sc.lane_steps, std::memory_order_relaxed);
    soa_resident_lane_steps_.fetch_add(sc.resident_lane_steps,
                                       std::memory_order_relaxed);
    soa_exit_event_due_.fetch_add(sc.exit_event_due, std::memory_order_relaxed);
    soa_exit_not_resident_.fetch_add(sc.exit_not_resident,
                                     std::memory_order_relaxed);
    soa_thermal_latched_.fetch_add(sc.thermal_latched,
                                   std::memory_order_relaxed);
  } catch (const std::exception& e) {
    // The lanes ran in lockstep; a mid-run failure has no single lane to
    // blame, so every job in the block carries the message and run()'s
    // first-in-grid-order rule picks the reported one.
    for (std::size_t i : block.grid_indices) errors[i] = e.what();
  } catch (...) {
    for (std::size_t i : block.grid_indices) errors[i] = "unknown error";
  }
}

void Campaign::detect_leaks() {
  leak_warnings_.clear();
  for (const auto& job : results_) {
    const double first = job.result.ledger.storage_loss_first_half_j;
    const double second = job.result.ledger.storage_loss_j - first;
    // Linear (rate-constant) losses split evenly across the halves;
    // superlinear growth shows up as a second half that dwarfs the first.
    // The absolute floor keeps numeric dust on lossless configs quiet.
    if (second > 2.0 * first && second - first > 1e-6) {
      leak_warnings_.push_back({job.platform_index, job.scenario_index,
                                job.seed_index, job.seed, first, second});
    }
  }
}

const std::vector<LeakWarning>& Campaign::leak_warnings() const {
  require_spec(ran_, "Campaign::leak_warnings before run()");
  return leak_warnings_;
}

const std::vector<JobResult>& Campaign::run() {
  if (ran_) return results_;

  const std::size_t total = job_count();
  results_.resize(total);
  for (std::size_t p = 0; p < spec_.platforms.size(); ++p)
    for (std::size_t s = 0; s < spec_.scenarios.size(); ++s)
      for (std::size_t k = 0; k < spec_.seeds.size(); ++k) {
        auto& job = results_[flat_index(p, s, k)];
        job.platform_index = p;
        job.scenario_index = s;
        job.seed_index = k;
        job.seed = spec_.seeds[k];
      }

  if (spec_.compile_traces && !trace_slots_) {
    trace_slots_ = std::make_unique<TraceSlot[]>(spec_.scenarios.size() *
                                                 spec_.seeds.size());
  }

  // The schedulable unit. Legacy mode (lane_width <= 1, or no compiled
  // trace to share): one unit per job, in grid order. Batched mode: the
  // platform-variant axis of each (scenario, seed) pair — every job that
  // replays the same compiled trace — is chunked into LaneBlocks of up to
  // lane_width lanes, each advanced in lockstep by one BatchRunner. The
  // kernel's byte-identity contract is what makes the mode (and the width)
  // a pure scheduling decision: results land in the same grid slots with
  // the same bytes either way.
  const bool batched = spec_.compile_traces && spec_.lane_width > 1;
  std::vector<LaneBlock> units;
  if (batched) {
    const std::size_t width = spec_.lane_width;
    for (std::size_t s = 0; s < spec_.scenarios.size(); ++s)
      for (std::size_t k = 0; k < spec_.seeds.size(); ++k)
        for (std::size_t p0 = 0; p0 < spec_.platforms.size(); p0 += width) {
          LaneBlock block;
          block.scenario_index = s;
          block.seed_index = k;
          const std::size_t end =
              std::min(p0 + width, spec_.platforms.size());
          for (std::size_t p = p0; p < end; ++p)
            block.grid_indices.push_back(flat_index(p, s, k));
          units.push_back(std::move(block));
        }
  } else {
    units.resize(total);
    for (std::size_t i = 0; i < total; ++i) {
      units[i].scenario_index = results_[i].scenario_index;
      units[i].seed_index = results_[i].seed_index;
      units[i].grid_indices.push_back(i);
    }
  }

  // Workers pop units through a fixed permutation. With longest_first the
  // permutation sorts by expected step count (duration / dt, the dominant
  // cost driver) so the pool never strands its tail behind one late-popped
  // long unit; the stable sort keeps construction order among equals.
  // Results still land in grid-order slots either way.
  std::vector<std::size_t> order(units.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (spec_.longest_first) {
    const auto expected_steps = [&](std::size_t u) {
      const auto& s = spec_.scenarios[units[u].scenario_index];
      return s.duration.value() / s.options.dt.value();
    };
    std::stable_sort(order.begin(), order.end(),
                     [&expected_steps](std::size_t a, std::size_t b) {
                       return expected_steps(a) > expected_steps(b);
                     });
  }

  // Each error slot is written by exactly one worker (the one that popped
  // the unit containing that job), so no synchronization beyond the join is
  // needed.
  std::vector<std::string> errors(total);
  std::atomic<std::size_t> next{0};
  auto& collector = obs::TraceCollector::instance();
  const double pool_start_us = collector.enabled() ? collector.now_us() : 0.0;
  const auto worker = [this, batched, &units, &next, &errors, &order,
                       &collector, pool_start_us](unsigned worker_index) {
    if (collector.enabled())
      collector.set_thread_name("worker-" + std::to_string(worker_index));
    for (;;) {
      const std::size_t n = next.fetch_add(1, std::memory_order_relaxed);
      if (n >= units.size()) return;
      const LaneBlock& unit = units[order[n]];
      if (collector.enabled()) {
        // Queue wait: how long this unit sat ready before a worker popped
        // it — the LPT schedule made visible per unit.
        obs::TraceEvent wait;
        wait.name = "campaign.job_wait";
        wait.category = "campaign";
        wait.ts_us = pool_start_us;
        wait.dur_us = collector.now_us() - pool_start_us;
        wait.tid = collector.thread_id();
        wait.args_json =
            "\"grid_index\": " + std::to_string(unit.grid_indices.front()) +
            ", \"lanes\": " + std::to_string(unit.grid_indices.size());
        collector.record(std::move(wait));
      }
      if (batched) {
        run_block(unit, errors);
      } else {
        const std::size_t i = unit.grid_indices.front();
        try {
          run_job(results_[i]);
        } catch (const std::exception& e) {
          errors[i] = e.what();
        } catch (...) {
          errors[i] = "unknown error";
        }
      }
    }
  };

  unsigned threads = spec_.threads != 0 ? spec_.threads
                                        : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (threads > units.size()) threads = static_cast<unsigned>(units.size());

  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& t : pool) t.join();
  }

  // Surface the first failure in grid order, independent of which worker
  // hit it first on the wall clock.
  for (std::size_t i = 0; i < total; ++i) {
    if (!errors[i].empty()) {
      const auto& job = results_[i];
      results_.clear();
      throw SpecError("Campaign job (platform='" +
                      spec_.platforms[job.platform_index].name + "', scenario='" +
                      spec_.scenarios[job.scenario_index].name +
                      "', seed=" + std::to_string(job.seed) +
                      ") failed: " + errors[i]);
    }
  }

  detect_leaks();
  ran_ = true;
  return results_;
}

const std::vector<JobResult>& Campaign::results() const {
  require_spec(ran_, "Campaign::results before run()");
  return results_;
}

const JobResult& Campaign::at(std::size_t platform, std::size_t scenario,
                              std::size_t seed_index) const {
  require_spec(ran_, "Campaign::at before run()");
  require_spec(platform < spec_.platforms.size() &&
                   scenario < spec_.scenarios.size() &&
                   seed_index < spec_.seeds.size(),
               "Campaign::at index out of range");
  return results_[flat_index(platform, scenario, seed_index)];
}

obs::MetricsSnapshot Campaign::metrics() const {
  require_spec(ran_, "Campaign::metrics before run()");
  obs::MetricsSnapshot merged;
  for (const auto& job : results_)
    merged.merge(systems::metrics_snapshot(job.result));
  obs::Registry campaign_level;
  campaign_level.counter("campaign.jobs").add(results_.size());
  campaign_level.counter("campaign.trace_compiles").add(trace_compiles());
  campaign_level.counter("campaign.lane_blocks").add(lane_blocks());
  // Leak detector (obs pillar 2): the warning count plus the worst excess
  // of second-half over first-half storage loss, so a dashboard threshold
  // on either row catches a storage stack whose losses grow with runtime.
  campaign_level.counter("campaign.leak_warnings").add(leak_warnings_.size());
  double worst_excess = 0.0;
  for (const auto& w : leak_warnings_)
    worst_excess =
        std::max(worst_excess, w.second_half_loss_j - w.first_half_loss_j);
  campaign_level.gauge("campaign.leak_excess_max_j").set(worst_excess);
  // SoA kernel residency (batched blocks only; all zero in legacy mode).
  // Run-variant like the trace-cache rows below — lane width and thread
  // count change them — which is why they live here and not in any result.
  const std::uint64_t soa_steps = soa_steps_.load(std::memory_order_relaxed);
  const std::uint64_t soa_lane_steps =
      soa_lane_steps_.load(std::memory_order_relaxed);
  const std::uint64_t soa_resident =
      soa_resident_lane_steps_.load(std::memory_order_relaxed);
  const std::uint64_t soa_quiet =
      soa_quiet_steps_.load(std::memory_order_relaxed);
  campaign_level.counter("campaign.soa.steps").add(soa_steps);
  campaign_level.counter("campaign.soa.quiet_steps").add(soa_quiet);
  campaign_level.counter("campaign.soa.lane_steps").add(soa_lane_steps);
  campaign_level.counter("campaign.soa.resident_lane_steps").add(soa_resident);
  campaign_level.counter("campaign.soa.exit_event_due")
      .add(soa_exit_event_due_.load(std::memory_order_relaxed));
  campaign_level.counter("campaign.soa.exit_not_resident")
      .add(soa_exit_not_resident_.load(std::memory_order_relaxed));
  campaign_level.counter("campaign.soa.thermal_latched")
      .add(soa_thermal_latched_.load(std::memory_order_relaxed));
  campaign_level.gauge("campaign.soa.resident_fraction")
      .set(soa_lane_steps == 0 ? 0.0
                               : static_cast<double>(soa_resident) /
                                     static_cast<double>(soa_lane_steps));
  campaign_level.gauge("campaign.soa.quiet_fraction")
      .set(soa_steps == 0 ? 0.0
                          : static_cast<double>(soa_quiet) /
                                static_cast<double>(soa_steps));
  if (trace_cache_) {
    // Cache behavior is allowed to differ run to run (cold vs warm) — these
    // rows exist for exactly that diagnosis, unlike the result exports,
    // which stay byte-identical across cache states.
    const env::TraceCacheStats cs = trace_cache_->stats();
    campaign_level.counter("trace_cache.hits").add(cs.hits);
    campaign_level.counter("trace_cache.misses").add(cs.misses);
    campaign_level.counter("trace_cache.evictions").add(cs.evictions);
    campaign_level.gauge("trace_cache.bytes_mapped")
        .set(static_cast<double>(cs.bytes_mapped));
  }
  merged.merge(campaign_level.snapshot());
  return merged;
}

env::TraceCacheStats Campaign::trace_cache_stats() const {
  return trace_cache_ ? trace_cache_->stats() : env::TraceCacheStats{};
}

InjectorFactory schedule_injector(
    std::shared_ptr<const fault::Schedule> schedule) {
  require_spec(schedule != nullptr, "schedule_injector: null schedule");
  return [schedule = std::move(schedule)](std::uint64_t seed,
                                          systems::Platform& platform) {
    return schedule->build_injector(seed, platform.fault_targets());
  };
}

std::vector<FieldStats> Campaign::seed_stats(std::size_t platform,
                                             std::size_t scenario) const {
  require_spec(ran_, "Campaign::seed_stats before run()");
  require_spec(
      platform < spec_.platforms.size() && scenario < spec_.scenarios.size(),
      "Campaign::seed_stats index out of range");
  std::vector<JobResult> cell;
  cell.reserve(spec_.seeds.size());
  for (std::size_t k = 0; k < spec_.seeds.size(); ++k)
    cell.push_back(results_[flat_index(platform, scenario, k)]);
  std::vector<FieldStats> out;
  out.reserve(run_result_fields().size());
  for (const auto& field : run_result_fields())
    out.push_back(field_stats(cell, field.get));
  return out;
}

}  // namespace msehsim::campaign
