#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <thread>

#include "core/error.hpp"
#include "obs/trace.hpp"

namespace msehsim::campaign {

FieldStats field_stats(const std::vector<JobResult>& jobs,
                       double (*get)(const systems::RunResult&)) {
  FieldStats s;
  if (jobs.empty()) return s;
  double sum = 0.0;
  s.min = get(jobs.front().result);
  s.max = s.min;
  for (const auto& job : jobs) {
    const double v = get(job.result);
    sum += v;
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
  }
  const auto n = static_cast<double>(jobs.size());
  s.mean = sum / n;
  double ss = 0.0;
  for (const auto& job : jobs) {
    const double d = get(job.result) - s.mean;
    ss += d * d;
  }
  s.stddev = std::sqrt(ss / n);
  return s;
}

Campaign::Campaign(CampaignSpec spec) : spec_(std::move(spec)) {
  require_spec(!spec_.platforms.empty(), "Campaign needs >= 1 platform variant");
  require_spec(!spec_.scenarios.empty(), "Campaign needs >= 1 scenario");
  require_spec(!spec_.seeds.empty(), "Campaign needs >= 1 seed");
  for (const auto& p : spec_.platforms)
    require_spec(static_cast<bool>(p.make),
                 "Campaign platform variant '" + p.name + "' has no factory");
  if (spec_.compile_traces && !spec_.trace_cache_dir.empty()) {
    trace_cache_ = std::make_unique<env::TraceCache>(
        spec_.trace_cache_dir, spec_.trace_cache_max_bytes);
  }
  for (const auto& s : spec_.scenarios) {
    require_spec(static_cast<bool>(s.environment),
                 "Campaign scenario '" + s.name + "' has no environment factory");
    require_spec(s.duration.value() > 0.0,
                 "Campaign scenario '" + s.name + "' needs positive duration");
    require_spec(s.options.dt.value() > 0.0,
                 "Campaign scenario '" + s.name + "' needs positive dt");
    require_spec(s.options.recorder == nullptr,
                 "Campaign scenario '" + s.name +
                     "' must not share a TraceRecorder across jobs");
    require_spec(s.options.injector == nullptr,
                 "Campaign scenario '" + s.name +
                     "' must use the injector factory, not a shared injector");
  }
}

std::size_t Campaign::flat_index(std::size_t platform, std::size_t scenario,
                                 std::size_t seed_index) const {
  return (platform * spec_.scenarios.size() + scenario) * spec_.seeds.size() +
         seed_index;
}

std::shared_ptr<const env::CompiledTrace> Campaign::compiled_trace(
    std::size_t scenario_index, std::size_t seed_index) {
  auto& slot = trace_slots_[scenario_index * spec_.seeds.size() + seed_index];
  std::call_once(slot.once, [&] {
    OBS_SPAN("campaign.compile_trace", "campaign");
    try {
      const auto& scenario = spec_.scenarios[scenario_index];
      const env::TraceCacheKey key{scenario.name, spec_.seeds[seed_index],
                                   scenario.options.dt, scenario.duration};
      if (trace_cache_) {
        // A mapped hit skips environment construction entirely — that is
        // the win. Any invalid or missing entry falls through to a live
        // compile below, so a corrupt cache can never change a result.
        slot.trace = trace_cache_->load(key);
        if (slot.trace) return;
      }
      auto source = scenario.environment(spec_.seeds[seed_index]);
      require_spec(source != nullptr,
                   "Campaign environment factory '" + scenario.name +
                       "' returned null");
      slot.trace = env::CompiledTrace::compile(*source, scenario.options.dt,
                                               scenario.duration);
      trace_compiles_.fetch_add(1, std::memory_order_relaxed);
      if (trace_cache_) trace_cache_->store(key, *slot.trace);
    } catch (const std::exception& e) {
      slot.error = e.what();
    } catch (...) {
      slot.error = "unknown error compiling trace";
    }
  });
  if (!slot.error.empty()) throw SpecError(slot.error);
  return slot.trace;
}

void Campaign::run_job(JobResult& job) {
  const auto& variant = spec_.platforms[job.platform_index];
  const auto& scenario = spec_.scenarios[job.scenario_index];

  // Coarse span, one per job: always recorded while tracing is on. The
  // args identify the grid point so a Perfetto timeline reads directly as
  // the schedule. Wall-clock only — never feeds any result byte.
  obs::Span job_span{"campaign.job", "campaign",
                     "\"platform\": \"" + variant.name + "\", \"scenario\": \"" +
                         scenario.name +
                         "\", \"seed\": " + std::to_string(job.seed)};

  auto platform = variant.make(job.seed);
  require_spec(platform != nullptr,
               "Campaign platform factory '" + variant.name + "' returned null");
  std::unique_ptr<env::EnvironmentModel> environment;
  if (spec_.compile_traces) {
    environment = std::make_unique<env::CompiledEnvironment>(
        compiled_trace(job.scenario_index, job.seed_index));
  } else {
    environment = scenario.environment(job.seed);
    require_spec(environment != nullptr,
                 "Campaign environment factory '" + scenario.name +
                     "' returned null");
  }

  systems::RunOptions options = scenario.options;
  std::unique_ptr<fault::FaultInjector> injector;
  if (scenario.injector) {
    injector = scenario.injector(job.seed, *platform);
    options.injector = injector.get();
  }
  job.result =
      systems::run_platform(*platform, *environment, scenario.duration, options);
}

const std::vector<JobResult>& Campaign::run() {
  if (ran_) return results_;

  const std::size_t total = job_count();
  results_.resize(total);
  for (std::size_t p = 0; p < spec_.platforms.size(); ++p)
    for (std::size_t s = 0; s < spec_.scenarios.size(); ++s)
      for (std::size_t k = 0; k < spec_.seeds.size(); ++k) {
        auto& job = results_[flat_index(p, s, k)];
        job.platform_index = p;
        job.scenario_index = s;
        job.seed_index = k;
        job.seed = spec_.seeds[k];
      }

  if (spec_.compile_traces && !trace_slots_) {
    trace_slots_ = std::make_unique<TraceSlot[]>(spec_.scenarios.size() *
                                                 spec_.seeds.size());
  }

  // Workers pop jobs through a fixed permutation of the grid. With
  // longest_first the permutation sorts by expected step count
  // (duration / dt, the dominant cost driver) so the pool never strands its
  // tail behind one late-popped long job; the stable sort keeps grid order
  // among equals. Results still land in grid-order slots either way.
  std::vector<std::size_t> order(total);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (spec_.longest_first) {
    const auto expected_steps = [this](std::size_t i) {
      const auto& s = spec_.scenarios[results_[i].scenario_index];
      return s.duration.value() / s.options.dt.value();
    };
    std::stable_sort(order.begin(), order.end(),
                     [&expected_steps](std::size_t a, std::size_t b) {
                       return expected_steps(a) > expected_steps(b);
                     });
  }

  // Each error slot is written by exactly one worker (the one that popped
  // that job), so no synchronization beyond the join is needed.
  std::vector<std::string> errors(total);
  std::atomic<std::size_t> next{0};
  auto& collector = obs::TraceCollector::instance();
  const double pool_start_us = collector.enabled() ? collector.now_us() : 0.0;
  const auto worker = [this, total, &next, &errors, &order, &collector,
                       pool_start_us](unsigned worker_index) {
    if (collector.enabled())
      collector.set_thread_name("worker-" + std::to_string(worker_index));
    for (;;) {
      const std::size_t n = next.fetch_add(1, std::memory_order_relaxed);
      if (n >= total) return;
      const std::size_t i = order[n];
      if (collector.enabled()) {
        // Queue wait: how long this grid point sat ready before a worker
        // popped it — the LPT schedule made visible per job.
        obs::TraceEvent wait;
        wait.name = "campaign.job_wait";
        wait.category = "campaign";
        wait.ts_us = pool_start_us;
        wait.dur_us = collector.now_us() - pool_start_us;
        wait.tid = collector.thread_id();
        wait.args_json = "\"grid_index\": " + std::to_string(i);
        collector.record(std::move(wait));
      }
      try {
        run_job(results_[i]);
      } catch (const std::exception& e) {
        errors[i] = e.what();
      } catch (...) {
        errors[i] = "unknown error";
      }
    }
  };

  unsigned threads = spec_.threads != 0 ? spec_.threads
                                        : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (threads > total) threads = static_cast<unsigned>(total);

  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& t : pool) t.join();
  }

  // Surface the first failure in grid order, independent of which worker
  // hit it first on the wall clock.
  for (std::size_t i = 0; i < total; ++i) {
    if (!errors[i].empty()) {
      const auto& job = results_[i];
      results_.clear();
      throw SpecError("Campaign job (platform='" +
                      spec_.platforms[job.platform_index].name + "', scenario='" +
                      spec_.scenarios[job.scenario_index].name +
                      "', seed=" + std::to_string(job.seed) +
                      ") failed: " + errors[i]);
    }
  }

  ran_ = true;
  return results_;
}

const std::vector<JobResult>& Campaign::results() const {
  require_spec(ran_, "Campaign::results before run()");
  return results_;
}

const JobResult& Campaign::at(std::size_t platform, std::size_t scenario,
                              std::size_t seed_index) const {
  require_spec(ran_, "Campaign::at before run()");
  require_spec(platform < spec_.platforms.size() &&
                   scenario < spec_.scenarios.size() &&
                   seed_index < spec_.seeds.size(),
               "Campaign::at index out of range");
  return results_[flat_index(platform, scenario, seed_index)];
}

obs::MetricsSnapshot Campaign::metrics() const {
  require_spec(ran_, "Campaign::metrics before run()");
  obs::MetricsSnapshot merged;
  for (const auto& job : results_)
    merged.merge(systems::metrics_snapshot(job.result));
  obs::Registry campaign_level;
  campaign_level.counter("campaign.jobs").add(results_.size());
  campaign_level.counter("campaign.trace_compiles").add(trace_compiles());
  if (trace_cache_) {
    // Cache behavior is allowed to differ run to run (cold vs warm) — these
    // rows exist for exactly that diagnosis, unlike the result exports,
    // which stay byte-identical across cache states.
    const env::TraceCacheStats cs = trace_cache_->stats();
    campaign_level.counter("trace_cache.hits").add(cs.hits);
    campaign_level.counter("trace_cache.misses").add(cs.misses);
    campaign_level.counter("trace_cache.evictions").add(cs.evictions);
    campaign_level.gauge("trace_cache.bytes_mapped")
        .set(static_cast<double>(cs.bytes_mapped));
  }
  merged.merge(campaign_level.snapshot());
  return merged;
}

env::TraceCacheStats Campaign::trace_cache_stats() const {
  return trace_cache_ ? trace_cache_->stats() : env::TraceCacheStats{};
}

InjectorFactory schedule_injector(
    std::shared_ptr<const fault::Schedule> schedule) {
  require_spec(schedule != nullptr, "schedule_injector: null schedule");
  return [schedule = std::move(schedule)](std::uint64_t seed,
                                          systems::Platform& platform) {
    return schedule->build_injector(seed, platform.fault_targets());
  };
}

std::vector<FieldStats> Campaign::seed_stats(std::size_t platform,
                                             std::size_t scenario) const {
  require_spec(ran_, "Campaign::seed_stats before run()");
  require_spec(
      platform < spec_.platforms.size() && scenario < spec_.scenarios.size(),
      "Campaign::seed_stats index out of range");
  std::vector<JobResult> cell;
  cell.reserve(spec_.seeds.size());
  for (std::size_t k = 0; k < spec_.seeds.size(); ++k)
    cell.push_back(results_[flat_index(platform, scenario, k)]);
  std::vector<FieldStats> out;
  out.reserve(run_result_fields().size());
  for (const auto& field : run_result_fields())
    out.push_back(field_stats(cell, field.get));
  return out;
}

}  // namespace msehsim::campaign
