// Prioritized backup chain — FailoverPolicy generalized to N stages.
//
// The survey's platforms do not stop at one backup: System A keeps a
// hydrogen fuel cell behind its ambient stores, field deployments add a
// primary lithium cell behind that, and when every reserve is gone the last
// resort is shedding load (duty-cycling the node down to its floor). This
// chain models that ladder: stages engage in priority order — each one only
// after its predecessor is already in (or depleted) — with per-stage
// debounce and SoC hysteresis, and disengage in reverse order once the
// primaries have demonstrably recovered. Per-stage switch-in counters and
// residency times feed the survivability report (systems::RunResult).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/units.hpp"
#include "node/sensor_node.hpp"
#include "storage/fuel_cell.hpp"
#include "storage/switched.hpp"

namespace msehsim::manager {

/// What a backup stage actuates when it engages.
enum class BackupStageKind {
  kFuelCell,         ///< enable a storage::FuelCell (refills ambient stores)
  kSwitchedStorage,  ///< close a storage::SwitchedStorage gate (reserve cell)
  kLoadShed,         ///< force the node to its maximum task period
};

struct BackupStageParams {
  BackupStageKind kind{BackupStageKind::kFuelCell};
  /// Storage-bank slot of the actuated device (ignored for kLoadShed).
  std::size_t storage_slot{0};
  /// Regardless of source health, engage below this ambient SoC ...
  double enable_below_soc{0.25};
  /// ... and never disengage before the buffer is back above this.
  double disable_above_soc{0.50};
  /// A primary-source outage must persist this long before this stage
  /// engages (debounce: clouds are not faults). Later stages typically use
  /// longer times, so the ladder escalates rather than firing at once.
  Seconds min_outage{600.0};
  /// Primary recovery must persist this long before this stage disengages.
  Seconds min_recovery{1800.0};
};

class BackupChain {
 public:
  struct Params {
    /// Primary sources count as dead while their combined delivered power
    /// stays below this.
    Watts primary_dead_below{5e-6};
    std::vector<BackupStageParams> stages;
  };

  /// Accumulated per-stage bookkeeping for the survivability report.
  struct StageStats {
    std::uint64_t switch_ins{0};
    std::uint64_t switch_outs{0};
    Seconds residency{0.0};  ///< time spent engaged
  };

  explicit BackupChain(Params params);

  /// Binds stage @p i to its actuation target. Exactly one pointer must be
  /// non-null and it must match the stage's kind. systems::Platform calls
  /// this from set_backup_chain after validating the storage bank; the
  /// targets must outlive the chain.
  void bind_stage(std::size_t i, storage::FuelCell* cell,
                  storage::SwitchedStorage* switched, node::SensorNode* node);

  /// One control step (run after the duty-cycle controllers so an engaged
  /// load-shed stage overrides their period choice). @p primary_power is the
  /// combined delivered power of the ambient input chains over the last
  /// step; @p ambient_soc the SoC of the environmentally fed stores.
  void update(Seconds now, Watts primary_power, double ambient_soc);

  [[nodiscard]] std::size_t stage_count() const { return stages_.size(); }
  [[nodiscard]] const BackupStageParams& stage_params(std::size_t i) const {
    return stages_.at(i).params;
  }
  [[nodiscard]] bool stage_engaged(std::size_t i) const {
    return stages_.at(i).engaged;
  }
  [[nodiscard]] const StageStats& stage_stats(std::size_t i) const {
    return stages_.at(i).stats;
  }

  /// True while the chain considers the primary sources dead.
  [[nodiscard]] bool primary_down() const { return primary_down_; }

  /// Stage engagements / disengagements summed over the chain (the
  /// FaultReport failover/failback totals).
  [[nodiscard]] std::uint64_t failovers() const;
  [[nodiscard]] std::uint64_t failbacks() const;

  // ---- Failover latency (matches manager::FailoverPolicy) -----------------
  // Fault onset -> *first* stage engagement, credited once per outage
  // episode; pure-SoC engagements have no onset and are excluded.

  [[nodiscard]] Seconds failover_latency_total() const {
    return failover_latency_total_;
  }
  [[nodiscard]] std::uint64_t failover_latency_count() const {
    return failover_latency_count_;
  }
  [[nodiscard]] Seconds mean_time_to_failover() const {
    return failover_latency_count_ == 0
               ? Seconds{0.0}
               : Seconds{failover_latency_total_.value() /
                         static_cast<double>(failover_latency_count_)};
  }

 private:
  struct Stage {
    BackupStageParams params;
    storage::FuelCell* cell{nullptr};
    storage::SwitchedStorage* switched{nullptr};
    node::SensorNode* node{nullptr};
    bool engaged{false};
    /// Saved task period while a load-shed stage is in.
    std::optional<Seconds> saved_period;
    StageStats stats;
  };

  /// A stage whose reserve is exhausted no longer blocks its successor.
  [[nodiscard]] static bool depleted(const Stage& stage);
  void engage(Stage& stage);
  void disengage(Stage& stage);

  Params chain_params_;
  std::vector<Stage> stages_;
  std::optional<Seconds> outage_since_;
  std::optional<Seconds> recovery_since_;
  std::optional<Seconds> last_update_;
  bool primary_down_{false};
  bool latency_credited_{false};  ///< once per outage episode
  Seconds failover_latency_total_{0.0};
  std::uint64_t failover_latency_count_{0};
};

}  // namespace msehsim::manager
