#include "manager/monitor.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace msehsim::manager {

// ---------------------------------------------------------------------------
// AnalogVoltageMonitor
// ---------------------------------------------------------------------------

Joules AnalogVoltageMonitor::AssumedDevice::energy_at(Volts v) const {
  switch (model) {
    case Model::kCapacitor: {
      const Joules at_v = capacitor_energy(capacitance, v);
      const Joules at_floor = capacitor_energy(capacitance, min_voltage);
      return Joules{std::max(0.0, (at_v - at_floor).value())};
    }
    case Model::kBattery: {
      const double span = (max_voltage - min_voltage).value();
      if (span <= 0.0) return Joules{0.0};
      const double frac =
          std::clamp((v - min_voltage).value() / span, 0.0, 1.0);
      return capacity * frac;
    }
  }
  return Joules{0.0};
}

Joules AnalogVoltageMonitor::AssumedDevice::full_energy() const {
  return energy_at(max_voltage);
}

AnalogVoltageMonitor::AnalogVoltageMonitor(std::function<Volts()> voltage_source,
                                           AssumedDevice assumed,
                                           bus::AdcLine::Params adc,
                                           std::uint64_t seed)
    : voltage_source_(std::move(voltage_source)), assumed_(assumed), adc_(adc, seed) {
  require_spec(static_cast<bool>(voltage_source_),
               "AnalogVoltageMonitor needs a voltage source");
  require_spec(assumed.max_voltage > assumed.min_voltage,
               "assumed device voltage window invalid");
}

EnergyEstimate AnalogVoltageMonitor::estimate() {
  EnergyEstimate e;
  e.valid = true;
  const Volts measured = adc_.sample(voltage_source_());
  e.stored = assumed_.energy_at(measured);
  e.capacity = assumed_.full_energy();
  return e;  // incoming power is unobservable over one analog line
}

Joules AnalogVoltageMonitor::monitoring_energy() const {
  return adc_.energy_consumed();
}

// ---------------------------------------------------------------------------
// RetryBackoff
// ---------------------------------------------------------------------------

RetryBackoff::RetryBackoff(Params params)
    : params_(params),
      rng_(params.jitter_seed, stream_key("retry.backoff")) {
  require_spec(params_.max_attempts >= 1, "retry needs at least one attempt");
  require_spec(params_.initial_backoff.value() >= 0.0,
               "retry backoff must be >= 0");
  require_spec(params_.multiplier >= 1.0, "retry multiplier must be >= 1");
  require_spec(params_.max_backoff.value() >= 0.0,
               "retry backoff cap must be >= 0");
  require_spec(params_.jitter >= 0.0 && params_.jitter < 1.0,
               "retry jitter must be in [0,1)");
}

bool RetryBackoff::run(const std::function<bool()>& attempt) {
  Seconds wait = params_.initial_backoff;
  for (int i = 0; i < params_.max_attempts; ++i) {
    ++attempts_;
    if (i > 0) {
      ++retries_;
      Seconds settle = wait;
      if (params_.max_backoff.value() > 0.0)
        settle = std::min(settle, params_.max_backoff);
      // Full jitter in [1 - jitter, 1]: the RNG advances only on the
      // jittered path, so jitter == 0 byte-preserves the old fixed ladder.
      if (params_.jitter > 0.0)
        settle = settle * (1.0 - params_.jitter * rng_.next_double());
      total_backoff_ += settle;
      wait = wait * params_.multiplier;
    }
    if (attempt()) return true;
  }
  ++give_ups_;
  return false;
}

// ---------------------------------------------------------------------------
// DigitalBusMonitor
// ---------------------------------------------------------------------------

DigitalBusMonitor::DigitalBusMonitor(bus::I2cBus& bus,
                                     std::vector<std::uint8_t> addresses,
                                     RetryBackoff::Params retry)
    : bus_(&bus), addresses_(std::move(addresses)), retry_(retry) {
  require_spec(!addresses_.empty(), "DigitalBusMonitor needs at least one socket");
  enumerate();
}

void DigitalBusMonitor::enumerate() {
  inventory_.clear();
  for (const auto addr : addresses_) {
    // A datasheet read is long (66 bytes) and CRC-protected, so bit errors
    // surface as CRC failures here; retry until a clean image or give-up.
    std::optional<bus::ElectronicDatasheet> ds;
    retry_.run([&] {
      ds = bus::read_datasheet(*bus_, addr);
      return ds.has_value();
    });
    if (ds) inventory_.push_back(ModuleRecord{addr, std::move(*ds)});
  }
}

std::optional<std::uint32_t> DigitalBusMonitor::poll_u32(std::uint8_t address,
                                                         std::uint8_t base_reg) {
  std::optional<std::uint32_t> value;
  retry_.run([&] {
    value = bus::read_live_u32(*bus_, address, base_reg);
    return value.has_value();
  });
  return value;
}

EnergyEstimate DigitalBusMonitor::estimate() {
  EnergyEstimate e;
  e.valid = true;
  e.incoming_known = true;
  for (const auto& record : inventory_) {
    if (record.datasheet.device_class == bus::DeviceClass::kStorage) {
      const auto mj = poll_u32(record.address, bus::ModulePort::kRegEnergyMj);
      if (mj) e.stored += Joules{static_cast<double>(*mj) * 1e-3};
      e.capacity += record.datasheet.capacity;
    } else {
      const auto uw = poll_u32(record.address, bus::ModulePort::kRegPowerUw);
      if (uw) e.incoming += Watts{static_cast<double>(*uw) * 1e-6};
    }
  }
  return e;
}

Joules DigitalBusMonitor::monitoring_energy() const { return bus_->energy_consumed(); }

// ---------------------------------------------------------------------------
// ActivityFlagMonitor
// ---------------------------------------------------------------------------

ActivityFlagMonitor::ActivityFlagMonitor(std::vector<std::function<bool()>> probes,
                                         Joules energy_per_poll)
    : probes_(std::move(probes)), energy_per_poll_(energy_per_poll) {
  require_spec(!probes_.empty(), "ActivityFlagMonitor needs at least one probe");
  require_spec(energy_per_poll_.value() >= 0.0,
               "ActivityFlagMonitor poll energy must be >= 0");
}

EnergyEstimate ActivityFlagMonitor::estimate() {
  spent_ += energy_per_poll_;
  flags_.clear();
  flags_.reserve(probes_.size());
  for (const auto& probe : probes_) flags_.push_back(probe && probe());
  // Flags alone cannot quantify energy: the estimate stays invalid, which
  // is precisely why System F cannot drive duty-cycle adaptation.
  return EnergyEstimate{};
}

}  // namespace msehsim::manager
