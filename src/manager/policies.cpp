#include "manager/policies.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace msehsim::manager {

DutyCycleController::DutyCycleController(Params params) : params_(params) {
  require_spec(params_.target_soc > 0.0 && params_.target_soc < 1.0,
               "duty-cycle target SoC must be in (0,1)");
  require_spec(params_.gain > 0.0, "duty-cycle gain must be > 0");
  require_spec(params_.deadband >= 0.0 && params_.deadband < 0.5,
               "duty-cycle deadband must be in [0, 0.5)");
}

void DutyCycleController::update(const EnergyEstimate& estimate,
                                 node::SensorNode& node) {
  if (!estimate.valid || estimate.capacity.value() <= 0.0) return;
  const double error = params_.target_soc - estimate.soc();
  if (std::fabs(error) <= params_.deadband) return;
  // error > 0 (store below target): lengthen the period; error < 0: shorten.
  const double factor = std::clamp(1.0 + params_.gain * error, 0.5, 2.0);
  node.set_task_period(node.task_period() * factor);
  ++adjustments_;
}

EnoPowerController::EnoPowerController(Params params) : params_(params) {
  require_spec(params_.utilization > 0.0 && params_.utilization <= 1.0,
               "ENO utilization must be in (0,1]");
  require_spec(params_.base_load.value() >= 0.0, "ENO base load must be >= 0");
  require_spec(params_.rail.value() > 0.0, "ENO rail must be > 0");
}

void EnoPowerController::update(const EnergyEstimate& estimate,
                                node::SensorNode& node) {
  if (!estimate.valid || !estimate.incoming_known) return;
  const double budget =
      params_.utilization * estimate.incoming.value() - params_.base_load.value();
  // The node's consumption law is average_power(T) = P_base + E_cycle / T.
  // Two observable points — the present period and the floor at T_max —
  // recover both coefficients:
  //   E_cycle = (P(T) - P(Tmax)) / (1/T - 1/Tmax),  P_base = P(Tmax) - E/Tmax.
  const double p_now = node.average_power(params_.rail).value();
  const Seconds t_now = node.task_period();
  const double t_max = node.workload().max_period.value();
  const double p_floor = node.floor_power(params_.rail).value();
  const double denom = 1.0 / t_now.value() - 1.0 / t_max;
  if (denom <= 0.0) return;
  const double cycle_energy = (p_now - p_floor) / denom;
  const double p_base = p_floor - cycle_energy / t_max;
  if (budget <= p_base + 1e-12 || cycle_energy <= 0.0) {
    node.set_task_period(node.workload().max_period);
    ++adjustments_;
    return;
  }
  node.set_task_period(Seconds{cycle_energy / (budget - p_base)});
  ++adjustments_;
}

FailoverPolicy::FailoverPolicy(Params params) : params_(params) {
  require_spec(params_.primary_dead_below.value() >= 0.0,
               "failover dead-power threshold must be >= 0");
  require_spec(params_.dead_time.value() > 0.0, "failover dead time must be > 0");
  require_spec(params_.recovery_time.value() > 0.0,
               "failover recovery time must be > 0");
  require_spec(params_.enable_below_soc < params_.disable_above_soc,
               "failover hysteresis window inverted");
  require_spec(params_.enable_below_soc >= 0.0 && params_.disable_above_soc <= 1.0,
               "failover thresholds must be in [0,1]");
}

void FailoverPolicy::update(Seconds now, Watts primary_power, double ambient_soc,
                            storage::FuelCell& cell) {
  const bool alive = primary_power > params_.primary_dead_below;
  if (alive) {
    outage_since_.reset();
    if (!recovery_since_.has_value()) recovery_since_ = now;
  } else {
    recovery_since_.reset();
    if (!outage_since_.has_value()) outage_since_ = now;
  }
  primary_down_ = outage_since_.has_value() &&
                  now - *outage_since_ >= params_.dead_time;

  const bool low_soc = ambient_soc < params_.enable_below_soc;
  if (!cell.enabled() && (primary_down_ || low_soc)) {
    cell.set_enabled(true);
    ++failovers_;
    if (outage_since_.has_value()) {
      failover_latency_total_ += now - *outage_since_;
      ++failover_latency_count_;
    }
    return;
  }
  const bool recovered = recovery_since_.has_value() &&
                         now - *recovery_since_ >= params_.recovery_time;
  if (cell.enabled() && recovered && ambient_soc > params_.disable_above_soc) {
    cell.set_enabled(false);
    ++failbacks_;
  }
}

FuelCellPolicy::FuelCellPolicy(Params params) : params_(params) {
  require_spec(params_.enable_below_soc < params_.disable_above_soc,
               "fuel-cell hysteresis window inverted");
  require_spec(params_.enable_below_soc >= 0.0 && params_.disable_above_soc <= 1.0,
               "fuel-cell thresholds must be in [0,1]");
}

void FuelCellPolicy::update(double ambient_soc, storage::FuelCell& cell) {
  if (!cell.enabled() && ambient_soc < params_.enable_below_soc) {
    cell.set_enabled(true);
    ++switch_ins_;
  } else if (cell.enabled() && ambient_soc > params_.disable_above_soc) {
    cell.set_enabled(false);
  }
}

}  // namespace msehsim::manager
