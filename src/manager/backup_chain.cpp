#include "manager/backup_chain.hpp"

#include "core/error.hpp"

namespace msehsim::manager {

BackupChain::BackupChain(Params params) : chain_params_(std::move(params)) {
  require_spec(chain_params_.primary_dead_below.value() >= 0.0,
               "backup-chain dead-power threshold must be >= 0");
  require_spec(!chain_params_.stages.empty(),
               "backup chain needs at least one stage");
  for (const auto& sp : chain_params_.stages) {
    require_spec(sp.enable_below_soc < sp.disable_above_soc,
                 "backup-stage hysteresis window inverted");
    require_spec(sp.enable_below_soc >= 0.0 && sp.disable_above_soc <= 1.0,
                 "backup-stage thresholds must be in [0,1]");
    require_spec(sp.min_outage.value() > 0.0,
                 "backup-stage min outage must be > 0");
    require_spec(sp.min_recovery.value() > 0.0,
                 "backup-stage min recovery must be > 0");
    stages_.push_back(Stage{sp});
  }
}

void BackupChain::bind_stage(std::size_t i, storage::FuelCell* cell,
                             storage::SwitchedStorage* switched,
                             node::SensorNode* node) {
  require_spec(i < stages_.size(), "bind_stage: stage index out of range");
  Stage& stage = stages_[i];
  switch (stage.params.kind) {
    case BackupStageKind::kFuelCell:
      require_spec(cell != nullptr && switched == nullptr && node == nullptr,
                   "fuel-cell stage binds exactly a FuelCell");
      break;
    case BackupStageKind::kSwitchedStorage:
      require_spec(switched != nullptr && cell == nullptr && node == nullptr,
                   "switched-storage stage binds exactly a SwitchedStorage");
      break;
    case BackupStageKind::kLoadShed:
      require_spec(node != nullptr && cell == nullptr && switched == nullptr,
                   "load-shed stage binds exactly a SensorNode");
      break;
  }
  stage.cell = cell;
  stage.switched = switched;
  stage.node = node;
}

bool BackupChain::depleted(const Stage& stage) {
  switch (stage.params.kind) {
    case BackupStageKind::kFuelCell:
      return stage.cell->stored_energy().value() <= 0.0;
    case BackupStageKind::kSwitchedStorage:
      return stage.switched->stored_energy().value() <= 0.0;
    case BackupStageKind::kLoadShed:
      return false;  // shedding load never runs out
  }
  return false;
}

void BackupChain::engage(Stage& stage) {
  switch (stage.params.kind) {
    case BackupStageKind::kFuelCell:
      stage.cell->set_enabled(true);
      break;
    case BackupStageKind::kSwitchedStorage:
      stage.switched->set_connected(true);
      break;
    case BackupStageKind::kLoadShed:
      stage.saved_period = stage.node->task_period();
      stage.node->set_task_period(stage.node->workload().max_period);
      break;
  }
  stage.engaged = true;
  ++stage.stats.switch_ins;
}

void BackupChain::disengage(Stage& stage) {
  switch (stage.params.kind) {
    case BackupStageKind::kFuelCell:
      stage.cell->set_enabled(false);
      break;
    case BackupStageKind::kSwitchedStorage:
      stage.switched->set_connected(false);
      break;
    case BackupStageKind::kLoadShed:
      if (stage.saved_period.has_value()) {
        stage.node->set_task_period(*stage.saved_period);
        stage.saved_period.reset();
      }
      break;
  }
  stage.engaged = false;
  ++stage.stats.switch_outs;
}

void BackupChain::update(Seconds now, Watts primary_power, double ambient_soc) {
  // Residency first, over the interval since the previous tick, for the
  // stages that were engaged across it.
  if (last_update_.has_value()) {
    const Seconds span = now - *last_update_;
    for (auto& stage : stages_)
      if (stage.engaged) stage.stats.residency += span;
  }
  last_update_ = now;

  // Outage / recovery debounce clocks, shared by all stages.
  const bool alive = primary_power > chain_params_.primary_dead_below;
  if (alive) {
    outage_since_.reset();
    latency_credited_ = false;  // episode over; the next outage is a new one
    if (!recovery_since_.has_value()) recovery_since_ = now;
  } else {
    recovery_since_.reset();
    if (!outage_since_.has_value()) outage_since_ = now;
  }
  primary_down_ = false;

  // Engage forward: stage i may switch in only once every earlier stage is
  // already in or has nothing left to give — the ladder escalates within a
  // single tick when a reserve is found empty.
  bool predecessors_ok = true;
  for (auto& stage : stages_) {
    const Seconds outage_age = outage_since_.has_value()
                                   ? now - *outage_since_
                                   : Seconds{0.0};
    const bool outage_tripped = outage_since_.has_value() &&
                                outage_age >= stage.params.min_outage;
    if (outage_tripped) primary_down_ = true;
    if (!stage.engaged && predecessors_ok &&
        (outage_tripped || ambient_soc < stage.params.enable_below_soc)) {
      engage(stage);
      if (outage_since_.has_value() && !latency_credited_) {
        failover_latency_total_ += outage_age;
        ++failover_latency_count_;
        latency_credited_ = true;
      }
    }
    predecessors_ok = predecessors_ok && (stage.engaged || depleted(stage));
  }

  // An engaged load-shed stage re-asserts the floor period every tick so the
  // duty-cycle controllers (which ran before us) cannot creep it back up.
  for (auto& stage : stages_)
    if (stage.engaged && stage.params.kind == BackupStageKind::kLoadShed)
      stage.node->set_task_period(stage.node->workload().max_period);

  // Disengage in reverse: a stage backs out only once every later stage is
  // already out, the primaries have held up for its recovery window, and
  // the buffer is demonstrably back.
  const bool recovered_base = recovery_since_.has_value();
  bool successors_out = true;
  for (auto it = stages_.rbegin(); it != stages_.rend(); ++it) {
    Stage& stage = *it;
    const bool recovered =
        recovered_base && now - *recovery_since_ >= stage.params.min_recovery;
    if (stage.engaged && successors_out && recovered &&
        ambient_soc > stage.params.disable_above_soc) {
      disengage(stage);
    }
    successors_out = successors_out && !stage.engaged;
  }
}

std::uint64_t BackupChain::failovers() const {
  std::uint64_t total = 0;
  for (const auto& stage : stages_) total += stage.stats.switch_ins;
  return total;
}

std::uint64_t BackupChain::failbacks() const {
  std::uint64_t total = 0;
  for (const auto& stage : stages_) total += stage.stats.switch_outs;
  return total;
}

}  // namespace msehsim::manager
