// Energy-management policies.
//
// Survey Sec. II.3: "Intelligent features allow the system to ... respond
// by, for example, adjusting its duty cycle to conserve energy when
// resources are limited, or selecting auxiliary storage such as the fuel
// cell." These policies are the executable version of that sentence.
#pragma once

#include <optional>

#include "core/units.hpp"
#include "manager/monitor.hpp"
#include "node/sensor_node.hpp"
#include "storage/fuel_cell.hpp"

namespace msehsim::manager {

/// Duty-cycle adaptation toward a state-of-charge target (energy-neutral
/// operation): below target, slow down; above target, speed up.
/// Multiplicative update with clamped step keeps the loop stable.
class DutyCycleController {
 public:
  struct Params {
    double target_soc{0.6};
    double gain{1.5};          ///< aggressiveness of the multiplicative step
    double deadband{0.05};     ///< no action within +-deadband of the target
  };

  explicit DutyCycleController(Params params);
  DutyCycleController() : DutyCycleController(Params{}) {}

  /// One control step: adjusts @p node's task period from the monitor's
  /// belief. A blind system (invalid estimate) cannot adapt — the node
  /// keeps whatever period it was deployed with.
  void update(const EnergyEstimate& estimate, node::SensorNode& node);

  [[nodiscard]] std::uint64_t adjustments() const { return adjustments_; }

 private:
  Params params_;
  std::uint64_t adjustments_{0};
};

/// Energy-neutral-operation controller driven by *incoming power* (needs a
/// monitor that can observe it — digital monitoring only): sets the task
/// period so consumption matches a fraction of the measured harvest rate,
/// the textbook ENO law. Converges in one step when the estimate is good,
/// unlike the SoC controller's gradual walk.
class EnoPowerController {
 public:
  struct Params {
    double utilization{0.8};   ///< spend this fraction of incoming power
    Watts base_load{3e-6};     ///< node floor (sleep + wake-up radio)
    Volts rail{3.0};           ///< rail at which cycle energy is computed
  };

  explicit EnoPowerController(Params params);
  EnoPowerController() : EnoPowerController(Params{}) {}

  /// One control step. No-op unless the estimate carries incoming power.
  void update(const EnergyEstimate& estimate, node::SensorNode& node);

  [[nodiscard]] std::uint64_t adjustments() const { return adjustments_; }

 private:
  Params params_;
  std::uint64_t adjustments_{0};
};

/// Failover from the ambient (primary) sources to the backup store (System
/// A's hydrogen fuel cell) when the primaries *fail*, not merely when the
/// buffer is low. The SoC hysteresis of FuelCellPolicy reacts only after the
/// buffer has drained; this policy also watches the input power itself, so a
/// faulted harvester bank (src/fault) triggers the backup while the buffer
/// still holds charge. Failback requires both sustained primary recovery and
/// a recovered buffer.
class FailoverPolicy {
 public:
  struct Params {
    /// Primary sources count as dead while their combined delivered power
    /// stays below this.
    Watts primary_dead_below{5e-6};
    /// Outage must persist this long before the backup switches in
    /// (debounce: clouds are not faults).
    Seconds dead_time{600.0};
    /// Recovery must persist this long before the backup switches out.
    Seconds recovery_time{1800.0};
    /// Regardless of source health, switch in below this SoC ...
    double enable_below_soc{0.25};
    /// ... and never switch out before the buffer is back above this.
    double disable_above_soc{0.50};
  };

  explicit FailoverPolicy(Params params);
  FailoverPolicy() : FailoverPolicy(Params{}) {}

  /// One control step. @p primary_power combined delivered power of the
  /// ambient input chains over the last step; @p ambient_soc state of charge
  /// of the environmentally fed stores.
  void update(Seconds now, Watts primary_power, double ambient_soc,
              storage::FuelCell& cell);

  /// Times the backup was switched in / back out.
  [[nodiscard]] std::uint64_t failovers() const { return failovers_; }
  [[nodiscard]] std::uint64_t failbacks() const { return failbacks_; }

  /// True while the policy considers the primary sources dead.
  [[nodiscard]] bool primary_down() const { return primary_down_; }

  // ---- Failover latency (the ROADMAP mean-time-to-failover metric) --------
  // Measured from fault onset — the first update that saw the primaries
  // dead — to the switch-in that covered it. Pure-SoC switch-ins (buffer
  // drained with healthy sources) have no onset and are excluded from the
  // mean, so the metric isolates how fast the *fault* path reacts.

  /// Total onset-to-switch-in latency across counted failovers.
  [[nodiscard]] Seconds failover_latency_total() const {
    return failover_latency_total_;
  }
  /// Failovers with a measurable onset (outage-triggered).
  [[nodiscard]] std::uint64_t failover_latency_count() const {
    return failover_latency_count_;
  }
  /// Mean onset-to-switch-in latency; 0 when no outage-triggered failover
  /// occurred.
  [[nodiscard]] Seconds mean_time_to_failover() const {
    return failover_latency_count_ == 0
               ? Seconds{0.0}
               : Seconds{failover_latency_total_.value() /
                         static_cast<double>(failover_latency_count_)};
  }

 private:
  Params params_;
  std::optional<Seconds> outage_since_;
  std::optional<Seconds> recovery_since_;
  bool primary_down_{false};
  std::uint64_t failovers_{0};
  std::uint64_t failbacks_{0};
  Seconds failover_latency_total_{0.0};
  std::uint64_t failover_latency_count_{0};
};

/// Fuel-cell fallback with hysteresis (System A): switch the stack in when
/// ambient-fed storage runs low, back out once it recovers.
class FuelCellPolicy {
 public:
  struct Params {
    double enable_below_soc{0.25};
    double disable_above_soc{0.50};
  };

  explicit FuelCellPolicy(Params params);
  FuelCellPolicy() : FuelCellPolicy(Params{}) {}

  /// @p ambient_soc state of charge of the environmentally charged stores.
  void update(double ambient_soc, storage::FuelCell& cell);

  [[nodiscard]] std::uint64_t switch_ins() const { return switch_ins_; }

 private:
  Params params_;
  std::uint64_t switch_ins_{0};
};

}  // namespace msehsim::manager
