// Energy monitors — one per capability level of the survey's Axis 3.
//
// The crucial semantic (Sec. III.2): monitors estimate energy through an
// *assumed* hardware model. Analog monitors bake the assumption in at build
// time, so swapping the storage device silently corrupts their estimates;
// the digital monitor re-reads electronic datasheets and stays correct —
// exactly the System B property the survey singles out.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bus/i2c.hpp"
#include "bus/module_port.hpp"
#include "bus/sense.hpp"
#include "core/units.hpp"
#include "storage/storage.hpp"
#include "taxonomy/taxonomy.hpp"

namespace msehsim::manager {

/// What a monitor believes about the energy subsystem.
struct EnergyEstimate {
  bool valid{false};
  Joules stored{0.0};
  Joules capacity{0.0};
  Watts incoming{0.0};
  bool incoming_known{false};

  [[nodiscard]] double soc() const {
    return capacity.value() > 0.0 ? stored.value() / capacity.value() : 0.0;
  }
};

class EnergyMonitor {
 public:
  virtual ~EnergyMonitor() = default;

  [[nodiscard]] virtual taxonomy::MonitoringCapability capability() const = 0;

  /// Performs one monitoring action (costs sensing/bus energy) and returns
  /// the belief. Invalid estimate = the system is blind.
  virtual EnergyEstimate estimate() = 0;

  /// Total energy spent on monitoring so far.
  [[nodiscard]] virtual Joules monitoring_energy() const = 0;

  /// Invoked by the platform after an energy-device change. Monitors that
  /// can re-recognize hardware refresh their model here; the others ignore
  /// it (and drift, per survey Sec. III.2).
  virtual void notify_hardware_change() {}
};

/// No monitoring at all (AmbiMax, MAX17710 Eval, EH-Link).
class NullMonitor final : public EnergyMonitor {
 public:
  [[nodiscard]] taxonomy::MonitoringCapability capability() const override {
    return taxonomy::MonitoringCapability::kNone;
  }
  EnergyEstimate estimate() override { return EnergyEstimate{}; }
  [[nodiscard]] Joules monitoring_energy() const override { return Joules{0.0}; }
};

/// Analog store-voltage line + ADC (MPWiNode's "Limited" monitoring).
/// Converts voltage to energy through a frozen assumed device model.
class AnalogVoltageMonitor final : public EnergyMonitor {
 public:
  /// The voltage-to-energy model assumed by the firmware.
  struct AssumedDevice {
    enum class Model { kCapacitor, kBattery } model{Model::kCapacitor};
    Farads capacitance{10.0};   ///< kCapacitor
    Joules capacity{0.0};       ///< kBattery: energy between vmin and vmax
    Volts min_voltage{0.0};
    Volts max_voltage{5.0};

    [[nodiscard]] Joules energy_at(Volts v) const;
    [[nodiscard]] Joules full_energy() const;
  };

  /// @p voltage_source reads the monitored terminal. It models the analog
  /// line soldered to the storage *slot*: after a hardware swap it reads
  /// the new device, while the assumed model stays frozen (claim C5).
  AnalogVoltageMonitor(std::function<Volts()> voltage_source, AssumedDevice assumed,
                       bus::AdcLine::Params adc, std::uint64_t seed);

  [[nodiscard]] taxonomy::MonitoringCapability capability() const override {
    return taxonomy::MonitoringCapability::kStoreVoltageOnly;
  }
  EnergyEstimate estimate() override;
  [[nodiscard]] Joules monitoring_energy() const override;

  /// Firmware update: tell the monitor about new hardware explicitly
  /// (what a *person* must do on non-plug-and-play systems).
  void reconfigure(AssumedDevice assumed) { assumed_ = assumed; }

  [[nodiscard]] const AssumedDevice& assumed() const { return assumed_; }

 private:
  std::function<Volts()> voltage_source_;
  AssumedDevice assumed_;
  bus::AdcLine adc_;
};

/// Digital monitor reading electronic datasheets + live telemetry over the
/// bus (System A on-power-unit MCU; System B node-side driver).
class DigitalBusMonitor final : public EnergyMonitor {
 public:
  struct ModuleRecord {
    std::uint8_t address{0};
    bus::ElectronicDatasheet datasheet;
  };

  /// @p addresses the module sockets to scan.
  DigitalBusMonitor(bus::I2cBus& bus, std::vector<std::uint8_t> addresses);

  [[nodiscard]] taxonomy::MonitoringCapability capability() const override {
    return taxonomy::MonitoringCapability::kFull;
  }
  EnergyEstimate estimate() override;
  [[nodiscard]] Joules monitoring_energy() const override;

  /// Re-enumerates the bus: hot-swapped modules are recognized from their
  /// datasheets (the System B property).
  void notify_hardware_change() override { enumerate(); }

  void enumerate();
  [[nodiscard]] const std::vector<ModuleRecord>& inventory() const {
    return inventory_;
  }

 private:
  bus::I2cBus* bus_;
  std::vector<std::uint8_t> addresses_;
  std::vector<ModuleRecord> inventory_;
};

/// Activity-flag monitor (Cymbet EVAL-09): "allows the system to see which
/// devices are active" — boolean flags only, no energy quantification.
class ActivityFlagMonitor final : public EnergyMonitor {
 public:
  /// @p probes one callback per input, true when that source is producing.
  /// @p energy_per_poll MCU cost of reading the flag register.
  ActivityFlagMonitor(std::vector<std::function<bool()>> probes,
                      Joules energy_per_poll);

  [[nodiscard]] taxonomy::MonitoringCapability capability() const override {
    return taxonomy::MonitoringCapability::kActivityFlags;
  }
  EnergyEstimate estimate() override;
  [[nodiscard]] Joules monitoring_energy() const override { return spent_; }

  /// Flags from the most recent estimate() call.
  [[nodiscard]] const std::vector<bool>& flags() const { return flags_; }

 private:
  std::vector<std::function<bool()>> probes_;
  Joules energy_per_poll_;
  Joules spent_{0.0};
  std::vector<bool> flags_;
};

}  // namespace msehsim::manager
