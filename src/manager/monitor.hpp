// Energy monitors — one per capability level of the survey's Axis 3.
//
// The crucial semantic (Sec. III.2): monitors estimate energy through an
// *assumed* hardware model. Analog monitors bake the assumption in at build
// time, so swapping the storage device silently corrupts their estimates;
// the digital monitor re-reads electronic datasheets and stays correct —
// exactly the System B property the survey singles out.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bus/i2c.hpp"
#include "bus/module_port.hpp"
#include "bus/sense.hpp"
#include "core/random.hpp"
#include "core/units.hpp"
#include "storage/storage.hpp"
#include "taxonomy/taxonomy.hpp"

namespace msehsim::manager {

/// What a monitor believes about the energy subsystem.
struct EnergyEstimate {
  bool valid{false};
  Joules stored{0.0};
  Joules capacity{0.0};
  Watts incoming{0.0};
  bool incoming_known{false};

  [[nodiscard]] double soc() const {
    return capacity.value() > 0.0 ? stored.value() / capacity.value() : 0.0;
  }
};

class EnergyMonitor {
 public:
  virtual ~EnergyMonitor() = default;

  [[nodiscard]] virtual taxonomy::MonitoringCapability capability() const = 0;

  /// Performs one monitoring action (costs sensing/bus energy) and returns
  /// the belief. Invalid estimate = the system is blind.
  virtual EnergyEstimate estimate() = 0;

  /// Total energy spent on monitoring so far.
  [[nodiscard]] virtual Joules monitoring_energy() const = 0;

  /// Invoked by the platform after an energy-device change. Monitors that
  /// can re-recognize hardware refresh their model here; the others ignore
  /// it (and drift, per survey Sec. III.2).
  virtual void notify_hardware_change() {}
};

/// No monitoring at all (AmbiMax, MAX17710 Eval, EH-Link).
class NullMonitor final : public EnergyMonitor {
 public:
  [[nodiscard]] taxonomy::MonitoringCapability capability() const override {
    return taxonomy::MonitoringCapability::kNone;
  }
  EnergyEstimate estimate() override { return EnergyEstimate{}; }
  [[nodiscard]] Joules monitoring_energy() const override { return Joules{0.0}; }
};

/// Analog store-voltage line + ADC (MPWiNode's "Limited" monitoring).
/// Converts voltage to energy through a frozen assumed device model.
class AnalogVoltageMonitor final : public EnergyMonitor {
 public:
  /// The voltage-to-energy model assumed by the firmware.
  struct AssumedDevice {
    enum class Model { kCapacitor, kBattery } model{Model::kCapacitor};
    Farads capacitance{10.0};   ///< kCapacitor
    Joules capacity{0.0};       ///< kBattery: energy between vmin and vmax
    Volts min_voltage{0.0};
    Volts max_voltage{5.0};

    [[nodiscard]] Joules energy_at(Volts v) const;
    [[nodiscard]] Joules full_energy() const;
  };

  /// @p voltage_source reads the monitored terminal. It models the analog
  /// line soldered to the storage *slot*: after a hardware swap it reads
  /// the new device, while the assumed model stays frozen (claim C5).
  AnalogVoltageMonitor(std::function<Volts()> voltage_source, AssumedDevice assumed,
                       bus::AdcLine::Params adc, std::uint64_t seed);

  [[nodiscard]] taxonomy::MonitoringCapability capability() const override {
    return taxonomy::MonitoringCapability::kStoreVoltageOnly;
  }
  EnergyEstimate estimate() override;
  [[nodiscard]] Joules monitoring_energy() const override;

  /// Firmware update: tell the monitor about new hardware explicitly
  /// (what a *person* must do on non-plug-and-play systems).
  void reconfigure(AssumedDevice assumed) { assumed_ = assumed; }

  [[nodiscard]] const AssumedDevice& assumed() const { return assumed_; }

 private:
  std::function<Volts()> voltage_source_;
  AssumedDevice assumed_;
  bus::AdcLine adc_;
};

/// Bounded retry with exponential backoff for bus transactions (monitor
/// polls under NAK bursts / EMI, src/fault). The backoff delays model the
/// settle time firmware inserts between attempts; in the quasi-static model
/// they are accounted as an aggregate counter rather than advancing the
/// clock, since a full retry ladder (a few ms) is far shorter than a step.
class RetryBackoff {
 public:
  struct Params {
    int max_attempts{3};             ///< total tries, including the first
    Seconds initial_backoff{1e-3};   ///< wait after the first failure
    double multiplier{2.0};          ///< backoff growth per further failure
    /// Cap on any single settle wait; 0 (the default) leaves the ladder
    /// uncapped, as before.
    Seconds max_backoff{0.0};
    /// Full-jitter fraction in [0, 1): each settle wait is scaled by a
    /// seeded-uniform draw from [1 - jitter, 1]. Identical nodes retrying
    /// after a shared stuck-bus fault then de-synchronize instead of
    /// hammering the bus in lockstep. 0 (the default) draws nothing and
    /// byte-preserves the old fixed ladder.
    double jitter{0.0};
    /// Seed for the jitter stream (ignored while jitter == 0).
    std::uint64_t jitter_seed{0x5eed};
  };

  explicit RetryBackoff(Params params);
  RetryBackoff() : RetryBackoff(Params{}) {}

  /// Runs @p attempt until it reports success or attempts are exhausted.
  /// Returns true on success.
  bool run(const std::function<bool()>& attempt);

  [[nodiscard]] std::uint64_t attempts() const { return attempts_; }
  /// Attempts beyond the first of each run() call.
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  /// run() calls that exhausted every attempt.
  [[nodiscard]] std::uint64_t give_ups() const { return give_ups_; }
  /// Total settle time spent waiting between attempts.
  [[nodiscard]] Seconds total_backoff() const { return total_backoff_; }

 private:
  Params params_;
  Pcg32 rng_;  ///< advanced only when jitter > 0
  std::uint64_t attempts_{0};
  std::uint64_t retries_{0};
  std::uint64_t give_ups_{0};
  Seconds total_backoff_{0.0};
};

/// Digital monitor reading electronic datasheets + live telemetry over the
/// bus (System A on-power-unit MCU; System B node-side driver).
class DigitalBusMonitor final : public EnergyMonitor {
 public:
  struct ModuleRecord {
    std::uint8_t address{0};
    bus::ElectronicDatasheet datasheet;
  };

  /// @p addresses the module sockets to scan. @p retry governs how stubborn
  /// the firmware is about NAKed polls before declaring the value unknown.
  DigitalBusMonitor(bus::I2cBus& bus, std::vector<std::uint8_t> addresses,
                    RetryBackoff::Params retry = {});

  [[nodiscard]] taxonomy::MonitoringCapability capability() const override {
    return taxonomy::MonitoringCapability::kFull;
  }
  EnergyEstimate estimate() override;
  [[nodiscard]] Joules monitoring_energy() const override;

  /// Re-enumerates the bus: hot-swapped modules are recognized from their
  /// datasheets (the System B property).
  void notify_hardware_change() override { enumerate(); }

  void enumerate();
  [[nodiscard]] const std::vector<ModuleRecord>& inventory() const {
    return inventory_;
  }

  /// Retry bookkeeping (attempts / retries / give-ups / settle time) for the
  /// fault report.
  [[nodiscard]] const RetryBackoff& retry() const { return retry_; }

 private:
  /// Polls one live register through the retry ladder; empty on give-up.
  std::optional<std::uint32_t> poll_u32(std::uint8_t address,
                                        std::uint8_t base_reg);

  bus::I2cBus* bus_;
  std::vector<std::uint8_t> addresses_;
  std::vector<ModuleRecord> inventory_;
  RetryBackoff retry_;
};

/// Activity-flag monitor (Cymbet EVAL-09): "allows the system to see which
/// devices are active" — boolean flags only, no energy quantification.
class ActivityFlagMonitor final : public EnergyMonitor {
 public:
  /// @p probes one callback per input, true when that source is producing.
  /// @p energy_per_poll MCU cost of reading the flag register.
  ActivityFlagMonitor(std::vector<std::function<bool()>> probes,
                      Joules energy_per_poll);

  [[nodiscard]] taxonomy::MonitoringCapability capability() const override {
    return taxonomy::MonitoringCapability::kActivityFlags;
  }
  EnergyEstimate estimate() override;
  [[nodiscard]] Joules monitoring_energy() const override { return spent_; }

  /// Flags from the most recent estimate() call.
  [[nodiscard]] const std::vector<bool>& flags() const { return flags_; }

 private:
  std::vector<std::function<bool()>> probes_;
  Joules energy_per_poll_;
  Joules spent_{0.0};
  std::vector<bool> flags_;
};

}  // namespace msehsim::manager
