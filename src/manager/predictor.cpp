#include "manager/predictor.hpp"

#include <cmath>

#include "core/error.hpp"

namespace msehsim::manager {

namespace {
constexpr double kSecondsPerDay = 86400.0;
}

EwmaHarvestPredictor::EwmaHarvestPredictor(Params params)
    : params_(params),
      slot_watts_(static_cast<std::size_t>(params.slots_per_day), 0.0),
      seen_(static_cast<std::size_t>(params.slots_per_day), false) {
  require_spec(params_.slots_per_day >= 1 && params_.slots_per_day <= 1440,
               "predictor slots per day out of range [1, 1440]");
  require_spec(params_.alpha > 0.0 && params_.alpha <= 1.0,
               "predictor alpha must be in (0, 1]");
}

std::size_t EwmaHarvestPredictor::slot_of(Seconds t) const {
  double day_time = std::fmod(t.value(), kSecondsPerDay);
  if (day_time < 0.0) day_time += kSecondsPerDay;
  const auto slot = static_cast<std::size_t>(
      day_time / kSecondsPerDay * params_.slots_per_day);
  return std::min(slot, slot_watts_.size() - 1);
}

void EwmaHarvestPredictor::observe(Seconds now, Watts incoming) {
  const std::size_t slot = slot_of(now);
  const double x = std::max(0.0, incoming.value());
  if (!seen_[slot]) {
    slot_watts_[slot] = x;
    seen_[slot] = true;
  } else {
    slot_watts_[slot] =
        params_.alpha * x + (1.0 - params_.alpha) * slot_watts_[slot];
  }
  ++observations_;
}

Watts EwmaHarvestPredictor::predict(Seconds when) const {
  const std::size_t slot = slot_of(when);
  return seen_[slot] ? Watts{slot_watts_[slot]} : Watts{0.0};
}

Watts EwmaHarvestPredictor::predict_mean(Seconds now, Seconds horizon) const {
  require_spec(horizon.value() > 0.0, "prediction horizon must be > 0");
  const double slot_len = kSecondsPerDay / params_.slots_per_day;
  const int n = std::max(1, static_cast<int>(horizon.value() / slot_len));
  double sum = 0.0;
  for (int k = 0; k < n; ++k)
    sum += predict(now + Seconds{(k + 0.5) * slot_len}).value();
  return Watts{sum / n};
}

PredictiveDutyController::PredictiveDutyController(Params params)
    : params_(params) {
  require_spec(params_.utilization > 0.0 && params_.utilization <= 1.0,
               "predictive utilization must be in (0, 1]");
  require_spec(params_.horizon.value() > 0.0, "predictive horizon must be > 0");
  require_spec(params_.rail.value() > 0.0, "predictive rail must be > 0");
}

void PredictiveDutyController::update(Seconds now, const EnergyEstimate& estimate,
                                      node::SensorNode& node) {
  if (!estimate.valid || !estimate.incoming_known) return;
  predictor_.observe(now, estimate.incoming);

  const double budget =
      params_.utilization *
      predictor_.predict_mean(now, params_.horizon).value();
  // Invert the consumption law P(T) = P_base + E_cycle/T from two samples,
  // as in EnoPowerController.
  const double p_now = node.average_power(params_.rail).value();
  const double t_now = node.task_period().value();
  const double t_max = node.workload().max_period.value();
  const double p_floor = node.floor_power(params_.rail).value();
  const double denom = 1.0 / t_now - 1.0 / t_max;
  if (denom <= 0.0) return;
  const double cycle_energy = (p_now - p_floor) / denom;
  const double p_base = p_floor - cycle_energy / t_max;
  if (budget <= p_base + 1e-12 || cycle_energy <= 0.0) {
    node.set_task_period(node.workload().max_period);
    return;
  }
  node.set_task_period(Seconds{cycle_energy / (budget - p_base)});
}

}  // namespace msehsim::manager
