// Harvest prediction for proactive energy management.
//
// The survey closes on the need for systems to "adapt [their] activity to
// [their] energy status"; reactive SoC control (policies.hpp) is the basic
// form. The stronger form used by energy-neutral schedulers is *prediction*:
// harvest is strongly diurnal, so an exponentially weighted moving average
// kept per time-of-day slot (the classic EWMA predictor of solar-harvesting
// schedulers) forecasts the next slots well. PredictiveDutyController uses
// the forecast to set a duty cycle the node can sustain through the coming
// lean hours instead of reacting after the buffer sags.
#pragma once

#include <cstdint>
#include <vector>

#include "core/units.hpp"
#include "manager/monitor.hpp"
#include "node/sensor_node.hpp"

namespace msehsim::manager {

/// Per-time-slot EWMA of observed harvest power.
class EwmaHarvestPredictor {
 public:
  struct Params {
    int slots_per_day{48};   ///< 30 min slots
    double alpha{0.3};       ///< weight of the newest observation
  };

  explicit EwmaHarvestPredictor(Params params);
  EwmaHarvestPredictor() : EwmaHarvestPredictor(Params{}) {}

  /// Records an observation of harvest power at simulation time @p now.
  void observe(Seconds now, Watts incoming);

  /// Predicted harvest power for the slot containing @p when. Slots never
  /// observed predict zero (pessimistic, which is the safe direction).
  [[nodiscard]] Watts predict(Seconds when) const;

  /// Mean predicted power over the next @p horizon starting at @p now.
  [[nodiscard]] Watts predict_mean(Seconds now, Seconds horizon) const;

  [[nodiscard]] int slots_per_day() const { return params_.slots_per_day; }
  [[nodiscard]] std::uint64_t observations() const { return observations_; }

 private:
  [[nodiscard]] std::size_t slot_of(Seconds t) const;

  Params params_;
  std::vector<double> slot_watts_;
  std::vector<bool> seen_;
  std::uint64_t observations_{0};
};

/// Duty-cycle control from a day-ahead forecast: pick the period whose
/// consumption the *predicted* mean harvest can sustain, applying the ENO
/// utilization margin. Proactive where DutyCycleController is reactive.
class PredictiveDutyController {
 public:
  struct Params {
    double utilization{0.7};       ///< spend this fraction of the forecast
    Seconds horizon{24.0 * 3600.0};
    Volts rail{3.0};
  };

  explicit PredictiveDutyController(Params params);
  PredictiveDutyController() : PredictiveDutyController(Params{}) {}

  /// One control step at time @p now: feeds the monitor's incoming-power
  /// estimate to the predictor and re-plans the node period. No-op for
  /// estimates that cannot observe incoming power.
  void update(Seconds now, const EnergyEstimate& estimate,
              node::SensorNode& node);

  [[nodiscard]] const EwmaHarvestPredictor& predictor() const {
    return predictor_;
  }

 private:
  Params params_;
  EwmaHarvestPredictor predictor_;
};

}  // namespace msehsim::manager
