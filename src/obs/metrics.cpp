#include "obs/metrics.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/fmt.hpp"

namespace msehsim::obs {

namespace {

std::string num(double v) {
  // Locale-independent shortest round-trip form (core/fmt).
  return format_double(v);
}

std::string_view kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

/// Appends one row as `name<sep>value` lines to @p out.
void append_row(std::string& out, const MetricRow& row, char sep) {
  switch (row.kind) {
    case MetricKind::kCounter:
      out += row.name;
      out += sep;
      out += std::to_string(row.count);
      out += '\n';
      break;
    case MetricKind::kGauge:
      out += row.name;
      out += sep;
      out += num(row.value);
      out += '\n';
      break;
    case MetricKind::kHistogram: {
      const auto line = [&out, &row, sep](const char* suffix,
                                          const std::string& value) {
        out += row.name;
        out += suffix;
        out += sep;
        out += value;
        out += '\n';
      };
      line(".count", std::to_string(row.count));
      line(".sum", num(row.sum));
      line(".min", num(row.min));
      line(".max", num(row.max));
      for (std::size_t b = 0; b < row.buckets.size(); ++b) {
        const std::string le =
            b < row.bounds.size() ? num(row.bounds[b]) : std::string("inf");
        line((".le_" + le).c_str(), std::to_string(row.buckets[b]));
      }
      break;
    }
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1, 0) {
  require_spec(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be sorted ascending");
  require_spec(std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                   bounds_.end(),
               "histogram bounds must be distinct");
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const auto in_bucket = static_cast<double>(buckets_[b]);
    if (cum + in_bucket < target || in_bucket == 0.0) {
      cum += in_bucket;
      continue;
    }
    // Clamp the bucket edges to the observed range: the first occupied
    // bucket starts no earlier than min_, and the overflow bucket (no upper
    // bound) as well as any bucket past the data ends at max_.
    double lo = b == 0 ? min_ : std::max(bounds_[b - 1], min_);
    double hi = b < bounds_.size() ? std::min(bounds_[b], max_) : max_;
    if (hi < lo) hi = lo;
    return lo + (target - cum) / in_bucket * (hi - lo);
  }
  return max_;  // q*count beyond the last occupied bucket (rounding dust)
}

Counter& Registry::counter(const std::string& name) {
  auto [it, inserted] = metrics_.try_emplace(name, Slot{MetricKind::kCounter,
                                                        {}, {}, {}});
  require_spec(it->second.kind == MetricKind::kCounter,
               "metric '" + name + "' already registered as " +
                   std::string(kind_name(it->second.kind)));
  return it->second.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  auto [it, inserted] =
      metrics_.try_emplace(name, Slot{MetricKind::kGauge, {}, {}, {}});
  require_spec(it->second.kind == MetricKind::kGauge,
               "metric '" + name + "' already registered as " +
                   std::string(kind_name(it->second.kind)));
  return it->second.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds) {
  auto [it, inserted] =
      metrics_.try_emplace(name, Slot{MetricKind::kHistogram, {}, {}, {}});
  require_spec(it->second.kind == MetricKind::kHistogram,
               "metric '" + name + "' already registered as " +
                   std::string(kind_name(it->second.kind)));
  if (inserted) {
    it->second.histogram.emplace_back(std::move(upper_bounds));
  } else {
    require_spec(it->second.histogram.front().bounds() == upper_bounds,
                 "metric '" + name + "' re-registered with different bounds");
  }
  return it->second.histogram.front();
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  snap.rows.reserve(metrics_.size());
  for (const auto& [name, slot] : metrics_) {
    MetricRow row;
    row.name = name;
    row.kind = slot.kind;
    switch (slot.kind) {
      case MetricKind::kCounter:
        row.count = slot.counter.value();
        break;
      case MetricKind::kGauge:
        row.value = slot.gauge.value();
        break;
      case MetricKind::kHistogram: {
        const auto& h = slot.histogram.front();
        row.count = h.count();
        row.sum = h.sum();
        row.min = h.min();
        row.max = h.max();
        row.bounds = h.bounds();
        row.buckets = h.buckets();
        break;
      }
    }
    snap.rows.push_back(std::move(row));
  }
  return snap;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  std::vector<MetricRow> merged;
  merged.reserve(rows.size() + other.rows.size());
  auto a = rows.begin();
  auto b = other.rows.begin();
  while (a != rows.end() || b != other.rows.end()) {
    if (b == other.rows.end() || (a != rows.end() && a->name < b->name)) {
      merged.push_back(std::move(*a++));
      continue;
    }
    if (a == rows.end() || b->name < a->name) {
      merged.push_back(*b++);
      continue;
    }
    require_spec(a->kind == b->kind, "metrics merge: '" + a->name +
                                         "' has mismatched kinds");
    MetricRow row = std::move(*a++);
    switch (row.kind) {
      case MetricKind::kCounter:
        row.count += b->count;
        break;
      case MetricKind::kGauge:
        row.value = std::max(row.value, b->value);
        break;
      case MetricKind::kHistogram:
        require_spec(row.bounds == b->bounds, "metrics merge: '" + row.name +
                                                  "' has mismatched bounds");
        for (std::size_t i = 0; i < row.buckets.size(); ++i)
          row.buckets[i] += b->buckets[i];
        if (b->count > 0) {
          row.min = row.count > 0 ? std::min(row.min, b->min) : b->min;
          row.max = row.count > 0 ? std::max(row.max, b->max) : b->max;
        }
        row.count += b->count;
        row.sum += b->sum;
        break;
    }
    merged.push_back(std::move(row));
    ++b;
  }
  rows = std::move(merged);
}

const MetricRow* MetricsSnapshot::find(const std::string& name) const {
  const auto it = std::lower_bound(
      rows.begin(), rows.end(), name,
      [](const MetricRow& row, const std::string& n) { return row.name < n; });
  return it != rows.end() && it->name == name ? &*it : nullptr;
}

std::string MetricsSnapshot::to_string() const {
  std::string out;
  for (const auto& row : rows) append_row(out, row, '=');
  return out;
}

std::string MetricsSnapshot::csv() const {
  std::string out = "metric,value\n";
  for (const auto& row : rows) append_row(out, row, ',');
  return out;
}

}  // namespace msehsim::obs
