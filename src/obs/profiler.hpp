// Campaign phase profiler — hierarchical wall-clock attribution.
//
// The span collector (obs/trace.hpp) records flat (name, ts, dur, tid)
// events; Perfetto renders them, but "where did the campaign's seconds go"
// needs an aggregate: trace compile vs cache probe vs lane dispatch vs
// export, nested the way the spans actually nested at runtime. A Profiler
// reconstructs that call tree from the events — per thread, spans sorted by
// start time and stacked by interval containment — and merges all threads
// into one tree keyed by span name paths.
//
// Each node carries a duration histogram (fixed decade bounds in
// microseconds) alongside count/total/self time, so the report and the
// metrics rows expose tail behavior (one 2 s compile among a thousand 2 ms
// probes), not just means. Wall-clock numbers are inherently
// nondeterministic; like the raw spans they never feed RunResult — the
// profile is a diagnostic surface, exported only through its own report()/
// metrics_snapshot() (and from there the Prometheus text).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace msehsim::obs {

/// Decade bounds for span durations, in microseconds: 1 µs .. 1 s, overflow
/// above. Shared by every profile node so campaign-level merges line up.
[[nodiscard]] const std::vector<double>& profile_duration_bounds_us();

/// One aggregated span site in the reconstructed call tree.
struct ProfileNode {
  std::string name;
  std::uint64_t count{0};
  double total_us{0.0};  ///< summed span durations
  double child_us{0.0};  ///< summed durations of direct children
  Histogram durations_us{profile_duration_bounds_us()};
  std::vector<ProfileNode> children;  ///< first-seen order

  /// Time inside this span not covered by a child span.
  [[nodiscard]] double self_us() const {
    return total_us > child_us ? total_us - child_us : 0.0;
  }
};

class Profiler {
 public:
  /// Folds @p events into the tree. Events are grouped by tid; within a
  /// thread they are ordered by start time (ties: longest first, so an
  /// enclosing span precedes the spans it contains) and nested by interval
  /// containment — a span that extends past the current stack top is its
  /// sibling, not its child, which keeps pseudo-spans like campaign.job_wait
  /// (recorded with a back-dated start) from swallowing the real work.
  void add_events(const std::vector<TraceEvent>& events);

  /// A Profiler fed from the process collector's current buffer
  /// (TraceCollector::snapshot_events).
  [[nodiscard]] static Profiler from_collector();

  /// The synthetic root; its children are the top-level phases.
  [[nodiscard]] const ProfileNode& root() const { return root_; }

  /// Indented text tree: count, total/self milliseconds, and the share of
  /// the parent's total per node. For humans; numbers are wall clock.
  [[nodiscard]] std::string report() const;

  /// The tree as metrics rows: per node a duration histogram
  /// `profile.<path>` ('/'-joined span names) and a `profile.<path>.self_us`
  /// gauge. Rows are name-sorted, so snapshots merge like any others.
  [[nodiscard]] MetricsSnapshot metrics_snapshot() const;

 private:
  static ProfileNode make_root() {
    ProfileNode node;
    node.name = "root";
    return node;
  }
  ProfileNode root_ = make_root();
};

}  // namespace msehsim::obs
