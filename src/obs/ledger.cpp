#include "obs/ledger.hpp"

#include <algorithm>
#include <cmath>

#include "core/fmt.hpp"

namespace msehsim::obs {

namespace {

void line(std::string& out, const char* name, double v) {
  out += name;
  out += '=';
  append_double(out, v);  // locale-independent, round-trip exact (core/fmt)
  out += '\n';
}

}  // namespace

double EnergyLedger::residual_j() const {
  const double inflow = harvested_j + storage_discharged_j + unserved_j;
  const double outflow =
      quiescent_j + bus_load_j + storage_charged_j + wasted_j;
  return inflow - outflow;
}

double EnergyLedger::relative_residual() const {
  const double gross = harvested_j + storage_discharged_j + unserved_j +
                       quiescent_j + bus_load_j + storage_charged_j + wasted_j;
  return std::fabs(residual_j()) / std::max(1.0, gross);
}

double EnergyLedger::source_residual_j(std::size_t i) const {
  const auto& s = sources.at(i);
  return s.transducer_j -
         (s.conversion_loss_j + s.tracker_overhead_j + s.delivered_j);
}

std::string EnergyLedger::to_string() const {
  std::string out;
  line(out, "ledger.harvested_j", harvested_j);
  line(out, "ledger.storage_discharged_j", storage_discharged_j);
  line(out, "ledger.unserved_j", unserved_j);
  line(out, "ledger.quiescent_j", quiescent_j);
  line(out, "ledger.bus_load_j", bus_load_j);
  line(out, "ledger.storage_charged_j", storage_charged_j);
  line(out, "ledger.wasted_j", wasted_j);
  line(out, "ledger.rail_load_j", rail_load_j);
  line(out, "ledger.output_loss_j", output_loss_j);
  line(out, "ledger.initial_stored_j", initial_stored_j);
  line(out, "ledger.final_stored_j", final_stored_j);
  line(out, "ledger.storage_delta_j", storage_delta_j);
  line(out, "ledger.storage_loss_j", storage_loss_j);
  line(out, "ledger.storage_loss_first_half_j", storage_loss_first_half_j);
  line(out, "ledger.transducer_j", transducer_j);
  line(out, "ledger.conversion_loss_j", conversion_loss_j);
  line(out, "ledger.tracker_overhead_j", tracker_overhead_j);
  line(out, "ledger.residual_j", residual_j());
  out += sources_to_string();
  return out;
}

std::string EnergyLedger::sources_to_string() const {
  std::string out;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const auto& s = sources[i];
    const std::string prefix = "ledger.source[" + std::to_string(i) + "].";
    out += prefix + "name=" + s.name + "\n";
    out += prefix + "kind=" + s.kind + "\n";
    line(out, (prefix + "transducer_j").c_str(), s.transducer_j);
    line(out, (prefix + "conversion_loss_j").c_str(), s.conversion_loss_j);
    line(out, (prefix + "tracker_overhead_j").c_str(), s.tracker_overhead_j);
    line(out, (prefix + "delivered_j").c_str(), s.delivered_j);
    line(out, (prefix + "share").c_str(), s.share);
    out += prefix + "mpp_cache_hits=" + std::to_string(s.mpp_cache_hits) + "\n";
    out += prefix + "mpp_recomputes=" + std::to_string(s.mpp_recomputes) + "\n";
  }
  return out;
}

}  // namespace msehsim::obs
