// Metrics registry — pillar 1 of the observability layer (survey axis T3:
// a system's credibility tracks its energy-monitoring capability; the
// simulator needs the same discipline about itself).
//
// Hot objects keep their counters as plain members (zero overhead, no
// locks, no shared state — the campaign thread-safety model); a Registry is
// the *reporting* surface those members are gathered onto at run end, under
// canonical dotted names. Snapshots are deterministic: rows sorted by name,
// values independent of thread count or wall clock, and merge() combines
// snapshots with fixed semantics (counters and histograms add, gauges keep
// the maximum) so a campaign can fold N job snapshots into one in grid
// order and get the same bytes every run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/units.hpp"

namespace msehsim::obs {

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_{0};
};

/// Last-written scalar (a level, not a flow).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_{0.0};
};

/// Fixed-bound histogram over a deterministic quantity (simulated seconds,
/// joules — never wall clock). Bucket i counts observations <= bounds[i];
/// one implicit overflow bucket catches the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;  ///< size bounds()+1, last is overflow
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return min_; }  ///< 0 when empty
  [[nodiscard]] double max() const { return max_; }  ///< 0 when empty

  /// Estimated q-quantile (0 <= q <= 1) by linear interpolation within the
  /// bucket holding the q*count-th observation — the estimator Prometheus's
  /// histogram_quantile applies to _bucket rows. Bucket edges are clamped to
  /// the observed [min, max] so the overflow bucket (and a sparse first
  /// bucket) interpolate over real data, not an unbounded range. Returns 0
  /// on an empty histogram, min() for q <= 0, max() for q >= 1.
  [[nodiscard]] double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_{0};
  double sum_{0.0};
  double min_{0.0};
  double max_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One registry entry, frozen. Counter rows use `count`; gauge rows use
/// `value`; histogram rows carry the full bucket vector plus count/sum/
/// min/max.
struct MetricRow {
  std::string name;
  MetricKind kind{MetricKind::kCounter};
  std::uint64_t count{0};
  double value{0.0};
  double sum{0.0};
  double min{0.0};
  double max{0.0};
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
};

/// A frozen, name-sorted view of a registry. The deterministic exchange
/// format: snapshots merge, print, and serialize identically regardless of
/// registration order or thread count.
struct MetricsSnapshot {
  std::vector<MetricRow> rows;  ///< sorted by name

  /// Folds @p other in: counters and histograms add (histogram bounds must
  /// match), gauges keep the maximum, rows missing on either side carry
  /// over. Throws SpecError on kind or bound mismatches.
  void merge(const MetricsSnapshot& other);

  [[nodiscard]] const MetricRow* find(const std::string& name) const;

  /// `name=value` lines (locale-independent shortest round-trip-exact
  /// doubles via core/fmt); histograms expand into
  /// .count/.sum/.min/.max/.le_* lines. Byte-comparable across runs.
  [[nodiscard]] std::string to_string() const;

  /// Two-column `metric,value` CSV with the same expansion as to_string.
  [[nodiscard]] std::string csv() const;
};

/// Typed named metrics. Accessors create on first use; re-accessing an
/// existing name with a different type (or different histogram bounds)
/// throws SpecError. Not thread-safe by design — one registry per run/job,
/// merged after the fact, mirroring the campaign isolation model.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  [[nodiscard]] std::size_t size() const { return metrics_.size(); }
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct Slot {
    MetricKind kind;
    Counter counter;
    Gauge gauge;
    std::vector<Histogram> histogram;  ///< 0 or 1; Histogram lacks default ctor
  };
  // std::map keeps iteration name-sorted, which is what makes snapshot()
  // deterministic without a separate sort.
  std::map<std::string, Slot> metrics_;
};

}  // namespace msehsim::obs
