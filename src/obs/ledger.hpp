// Energy-flow ledger — pillar 2 of the observability layer.
//
// Per-run conservation accounting at every boundary of the power chain:
// transducer -> input conditioner -> bus -> {storage, output conditioner ->
// load, quiescent overhead}. The rows are filled from accumulators the
// simulation already integrates per step (systems::Platform and
// power::InputChain), so the ledger costs nothing extra on the hot path and
// its values are byte-identical whether observability is compiled in or
// out.
//
// The standing invariant — every future PR's free test oracle — is the bus
// boundary identity, exact in real arithmetic by construction of
// Platform::step's balance loop:
//
//   harvested + storage_discharged + unserved
//     = quiescent + bus_load + storage_charged + wasted
//
// residual() measures how far separately-summed accumulators drift apart in
// floating point (~steps * eps, orders below the 1e-9 relative gate).
// Storage-internal losses (charge inefficiency + leakage) and the output
// converter's loss are derived rows, so the reader can also balance the
// survey-level books: harvested = load + losses + wasted + Δstored.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace msehsim::obs {

/// Per-input-chain breakdown: where one source's joules went between the
/// transducer terminal and the bus. Exact chain identity:
/// transducer = conversion_loss + tracker_overhead + delivered.
struct SourceRow {
  std::string name;          ///< harvester name (outermost wrapper)
  std::string kind;          ///< harvester kind ("Light", "Wind", ...)
  double transducer_j{0.0};  ///< extracted at the operating point (post-duty)
  double conversion_loss_j{0.0};  ///< input converter + droop loss
  double tracker_overhead_j{0.0}; ///< MPPT overhead actually paid
  double delivered_j{0.0};        ///< landed on the bus
  double share{0.0};  ///< delivered / total delivered (0 when nothing flowed)
  std::uint64_t mpp_cache_hits{0};   ///< this harvester's MPP memoization
  std::uint64_t mpp_recomputes{0};
};

struct EnergyLedger {
  // ---- Bus boundary (summed per step, exact identity) ---------------------
  double harvested_j{0.0};           ///< all chains into the bus
  double storage_discharged_j{0.0};  ///< stores (and fuel cell) into the bus
  double unserved_j{0.0};   ///< deficit nothing could cover (untruncated —
                            ///< unlike RunResult::unmet it keeps sub-1e-9 W
                            ///< leftovers, so the identity stays exact)
  double quiescent_j{0.0};  ///< platform overhead draw
  double bus_load_j{0.0};   ///< drawn by the output conditioner
  double storage_charged_j{0.0};  ///< bus into stores
  double wasted_j{0.0};           ///< surplus nothing could absorb

  // ---- Output boundary ----------------------------------------------------
  double rail_load_j{0.0};     ///< delivered to the node at the rail
  double output_loss_j{0.0};   ///< bus_load - rail_load (output converter)

  // ---- Storage boundary ---------------------------------------------------
  double initial_stored_j{0.0};
  double final_stored_j{0.0};
  double storage_delta_j{0.0};  ///< final - initial
  /// Charge inefficiency + self-discharge, derived:
  /// charged - discharged - delta.
  double storage_loss_j{0.0};
  /// storage_loss_j evaluated over the run's first half only, from a
  /// mid-run snapshot of the same accumulators (systems::detail::
  /// MidRunProbe). The superlinear-leak detector's probe: a loss growing
  /// linearly in duration splits ~evenly across the halves, so a second
  /// half markedly heavier than the first (Campaign::leak_warnings uses
  /// 2x) flags leakage compounding with state, not time. 0 when the run
  /// was too short to sample.
  double storage_loss_first_half_j{0.0};

  // ---- Transducer boundary ------------------------------------------------
  double transducer_j{0.0};       ///< sum over sources
  double conversion_loss_j{0.0};  ///< sum over sources
  double tracker_overhead_j{0.0}; ///< sum over sources
  std::vector<SourceRow> sources;

  /// Signed bus-boundary residual (inflow - outflow), joules.
  [[nodiscard]] double residual_j() const;

  /// residual_j() normalized by the gross bus flow (>= 1 J floor so empty
  /// runs don't divide by zero). The conservation gate is < 1e-9.
  [[nodiscard]] double relative_residual() const;

  /// Signed transducer-boundary residual for source @p i.
  [[nodiscard]] double source_residual_j(std::size_t i) const;

  /// `ledger.x=<round-trip-exact double>` lines plus per-source blocks
  /// (locale-independent via core/fmt), byte-comparable across
  /// runs (the same determinism contract as to_string(RunResult)).
  [[nodiscard]] std::string to_string() const;

  /// Just the variable-length `ledger.source[i].*` blocks — what
  /// to_string(RunResult) appends after its table-driven scalar lines
  /// (the aggregate rows above are already in the field table).
  [[nodiscard]] std::string sources_to_string() const;
};

}  // namespace msehsim::obs
