// Run-health timeline — fixed-cadence time-series sampling for one run.
//
// The survey's taxonomy axis T3 (and the ns-3 energy-framework / EnHANTs
// experimental practice) treats per-interval harvest/storage traces as the
// primary artifact of a harvesting study; end-of-run aggregates alone cannot
// show *when* a system browned out or which source carried the morning. A
// Timeline is the deterministic container for that artifact: a column-major
// (SoA) table of named channels sampled on a fixed simulated-time cadence.
//
// The class is deliberately generic — it knows column names, not platform
// internals — so the obs layer stays a leaf over core. The run-health schema
// (per-source harvested/delivered power, storage SoC, backup-chain stage,
// unserved energy, SoA lane residency) lives with the sampler in
// systems/runner.cpp, which is the single source for both the scalar and the
// batched lane path.
//
// Determinism contract, mirroring the authoritative-field-table discipline:
// one column-name table drives csv(), json(), and metrics_snapshot(), every
// double renders through core/fmt, and sampling is driven by the simulation
// clock (a read-only periodic event), never the wall clock — so enabling a
// timeline changes no RunResult byte, and the samples themselves are
// byte-identical across thread counts and lane widths.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/units.hpp"
#include "obs/metrics.hpp"

namespace msehsim::obs {

class Timeline {
 public:
  /// The documented default cadence (one sample per simulated minute) used
  /// by the overhead benchmark and the quick-start examples. RunOptions
  /// leaves the timeline off (cadence 0) unless asked.
  static constexpr double kDefaultCadenceS = 60.0;

  /// @p cadence the sampling period in simulated seconds (> 0);
  /// @p columns the channel names, fixed for the Timeline's lifetime.
  Timeline(Seconds cadence, std::vector<std::string> columns);

  /// Pre-sizes every column for @p samples rows (year-scale runs append
  /// tens of thousands of rows; growth reallocations are avoidable noise).
  void reserve(std::size_t samples);

  /// Appends one row. @p count must equal column_count() — a sampler whose
  /// row drifted from the schema is a bug, not a truncation.
  void append(double t_s, const double* values, std::size_t count);

  [[nodiscard]] Seconds cadence() const { return cadence_; }
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }
  [[nodiscard]] std::size_t column_count() const { return columns_.size(); }
  [[nodiscard]] std::size_t sample_count() const { return t_s_.size(); }
  [[nodiscard]] const std::vector<double>& time() const { return t_s_; }
  [[nodiscard]] const std::vector<double>& column(std::size_t i) const {
    return data_[i];
  }
  /// Index of @p name, or npos when absent.
  [[nodiscard]] std::size_t find_column(const std::string& name) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// `t_s,<columns...>` header + one row per sample, every double in the
  /// locale-independent shortest round-trip form of core/fmt.
  [[nodiscard]] std::string csv() const;

  /// `{"cadence_s": ..., "columns": [...], "samples": [[t, ...], ...]}` —
  /// same number formatting as csv(), byte-comparable across runs.
  [[nodiscard]] std::string json() const;

  /// The timeline folded onto metrics rows: `timeline.samples` (counter),
  /// `timeline.cadence_s` (gauge), and per column the last/min/max gauges
  /// `timeline.<col>.{last,min,max}`. Mergeable across a campaign's jobs
  /// (gauges keep the maximum — a fleet-worst view, which is what a scrape
  /// dashboard alerts on).
  [[nodiscard]] MetricsSnapshot metrics_snapshot() const;

 private:
  Seconds cadence_;
  std::vector<std::string> columns_;
  std::vector<double> t_s_;
  std::vector<std::vector<double>> data_;  ///< column-major, one per column
};

}  // namespace msehsim::obs
