// Prometheus text exposition — the scrape surface for the campaign daemon.
//
// Renders any MetricsSnapshot into the Prometheus text format (version
// 0.0.4): `# HELP` / `# TYPE` headers per family, counters suffixed
// `_total`, histograms expanded into cumulative `_bucket{le="..."}` rows
// plus `_sum`/`_count`. The repo's dotted metric names map mechanically:
// bracketed index segments (`ledger.source[0].share`) become an `index`
// label, every remaining invalid character becomes '_', and the @p prefix
// namespaces the whole family set (`msehsim_ledger_source_share{index="0"}`).
// One snapshot in, one scrape body out — the ROADMAP's daemon serves this
// string verbatim from its /metrics endpoint.
//
// prometheus_lint is the strict self-check (a promtool-style parse) run in
// tests and CI against everything the renderer emits: family grouping,
// name/label syntax, escape sequences, value parses, ascending cumulative
// buckets with a `+Inf` row equal to `_count`, non-negative counters.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace msehsim::obs {

/// @p snapshot rendered as a Prometheus text-format scrape body. Rows whose
/// names sanitize onto the same family (e.g. one metric per bracket index)
/// group under one HELP/TYPE header; a sanitization collision across
/// different kinds throws SpecError. Deterministic: families in sorted
/// order, samples in snapshot (name-sorted) order.
[[nodiscard]] std::string prometheus_text(const MetricsSnapshot& snapshot,
                                          const std::string& prefix = "msehsim");

/// Strict parser over a text-format scrape body: returns "" when @p text is
/// valid, else "line N: <problem>" for the first violation. Checks comment
/// syntax (HELP/TYPE, known types, TYPE before samples, one of each per
/// family), metric/label name grammar, label-value escapes, value syntax
/// (including +Inf/-Inf/NaN), family grouping without interleaving,
/// duplicate series, non-negative counters, and histogram structure
/// (ascending le, non-decreasing cumulative buckets, +Inf bucket present
/// and equal to _count, _sum and _count present).
[[nodiscard]] std::string prometheus_lint(const std::string& text);

}  // namespace msehsim::obs
