#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "core/error.hpp"
#include "core/fmt.hpp"

namespace msehsim::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string num(double v) {
  // Microsecond timestamps at fixed precision. to_chars is always in the C
  // locale — snprintf %f under a ',' decimal locale emitted invalid JSON.
  return format_double_fixed(v, 6);
}

/// One event as a Chrome trace_event JSON object, no trailing separator.
/// Both the in-memory drain and the disk spill files serialize through this
/// helper, so a replayed spill line is byte-identical to the object an
/// uncapped in-memory drain would have emitted.
std::string event_json(const TraceEvent& e) {
  std::string out = "{\"name\": \"" + json_escape(e.name) + "\", \"cat\": \"" +
                    json_escape(e.category) + "\", \"ph\": \"X\", \"ts\": " +
                    num(e.ts_us) + ", \"dur\": " + num(e.dur_us) +
                    ", \"pid\": 1, \"tid\": " + std::to_string(e.tid);
  if (!e.args_json.empty()) out += ", \"args\": {" + e.args_json + "}";
  out += "}";
  return out;
}

}  // namespace

TraceCollector::ThreadBuffer::ThreadBuffer() = default;
TraceCollector::ThreadBuffer::~ThreadBuffer() = default;

void TraceCollector::enable(std::uint32_t sample_every) {
#if MSEHSIM_OBS_ENABLED
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
    // A fresh trace forgets the previous run's spill file: closing the
    // stream here means the drain never replays stale events, and the next
    // spill reopens the path with truncation.
    buffer->spill.reset();
    buffer->spill_path.clear();
  }
  thread_names_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  spilled_.store(0, std::memory_order_relaxed);
  sample_every_.store(sample_every == 0 ? 1 : sample_every,
                      std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
#else
  (void)sample_every;  // compiled out: tracing stays off
#endif
}

void TraceCollector::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

double TraceCollector::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double, std::micro>(elapsed).count();
}

TraceCollector::ThreadBuffer& TraceCollector::local_buffer() {
  // One registration per thread for the process lifetime; the cached
  // pointer stays valid because enable() clears buffers without ever
  // destroying them.
  thread_local ThreadBuffer* cached = nullptr;
  if (cached == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = thread_ids_.try_emplace(
        std::this_thread::get_id(),
        static_cast<std::uint32_t>(thread_ids_.size()));
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = it->second;
    cached = buffer.get();
    buffers_.push_back(std::move(buffer));
  }
  return *cached;
}

std::uint32_t TraceCollector::thread_id() { return local_buffer().tid; }

void TraceCollector::set_thread_name(const std::string& name) {
  const std::uint32_t tid = thread_id();
  std::lock_guard<std::mutex> lock(mutex_);
  thread_names_.emplace_back(tid, name);
}

void TraceCollector::record(TraceEvent event) {
  ThreadBuffer& buffer = local_buffer();
  // The buffer mutex is private to this thread except during drains, so
  // the lock is uncontended on the hot path — no cross-thread traffic.
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= capacity_) {
    if (stream_.load(std::memory_order_relaxed)) {
      spill_locked(buffer);  // drain to disk, keep recording
    } else {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  buffer.events.push_back(std::move(event));
}

void TraceCollector::spill_locked(ThreadBuffer& buffer) {
  if (buffer.spill == nullptr) {
    // spill_dir_ is read without mutex_ (lock order forbids taking it under
    // buffer.mutex); stream_to_disk's call-before-recording contract makes
    // that safe.
    buffer.spill_path =
        spill_dir_ + "/spans-" + std::to_string(buffer.tid) + ".jsonl";
    buffer.spill = std::make_unique<std::ofstream>(
        buffer.spill_path, std::ios::binary | std::ios::trunc);
    require_spec(buffer.spill->good(),
                 "trace spill: cannot open '" + buffer.spill_path + "'");
  }
  for (const auto& e : buffer.events) *buffer.spill << event_json(e) << '\n';
  require_spec(buffer.spill->good(),
               "trace spill: write to '" + buffer.spill_path + "' failed");
  spilled_.fetch_add(buffer.events.size(), std::memory_order_relaxed);
  buffer.events.clear();
}

void TraceCollector::stream_to_disk(const std::string& dir) {
#if MSEHSIM_OBS_ENABLED
  std::lock_guard<std::mutex> lock(mutex_);
  spill_dir_ = dir;
  stream_.store(!dir.empty(), std::memory_order_relaxed);
#else
  (void)dir;  // compiled out: nothing ever records, nothing ever spills
#endif
}

std::size_t TraceCollector::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    count += buffer->events.size();
  }
  return count;
}

std::string TraceCollector::chrome_trace_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n\"traceEvents\": [";
  bool first = true;
  for (const auto& [tid, name] : thread_names_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " +
           std::to_string(tid) + ", \"args\": {\"name\": \"" +
           json_escape(name) + "\"}}";
  }
  // Drain buffers in thread-id order: deterministic for any thread count,
  // and byte-identical to the old single-vector layout for single-threaded
  // runs (one buffer, events in record order).
  std::vector<const ThreadBuffer*> ordered;
  ordered.reserve(buffers_.size());
  for (const auto& buffer : buffers_) ordered.push_back(buffer.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const ThreadBuffer* a, const ThreadBuffer* b) {
              return a->tid < b->tid;
            });
  for (const ThreadBuffer* buffer : ordered) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    // A streaming thread's spilled prefix replays from disk first — spill
    // lines are rendered by the same event_json the in-memory tail uses, so
    // the document is byte-identical to an uncapped in-memory drain.
    if (buffer->spill != nullptr) {
      buffer->spill->flush();
      std::ifstream replay(buffer->spill_path, std::ios::binary);
      require_spec(replay.good(),
                   "trace spill: cannot replay '" + buffer->spill_path + "'");
      std::string line;
      while (std::getline(replay, line)) {
        if (line.empty()) continue;
        out += first ? "\n" : ",\n";
        first = false;
        out += line;
      }
    }
    for (const auto& e : buffer->events) {
      out += first ? "\n" : ",\n";
      first = false;
      out += event_json(e);
    }
  }
  out += "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
  return out;
}

std::vector<TraceEvent> TraceCollector::snapshot_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const ThreadBuffer*> ordered;
  ordered.reserve(buffers_.size());
  for (const auto& buffer : buffers_) ordered.push_back(buffer.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const ThreadBuffer* a, const ThreadBuffer* b) {
              return a->tid < b->tid;
            });
  std::vector<TraceEvent> out;
  for (const ThreadBuffer* buffer : ordered) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  return out;
}

void TraceCollector::write_chrome_trace(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  require_spec(file.good(), "trace export: cannot open '" + path + "'");
  file << chrome_trace_json();
  require_spec(file.good(), "trace export: write to '" + path + "' failed");
}

void Span::finish() {
  auto& collector = TraceCollector::instance();
  if (!collector.enabled()) return;  // disabled mid-span: drop it
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.ts_us = start_us_;
  event.dur_us = collector.now_us() - start_us_;
  event.tid = collector.thread_id();
  event.args_json = std::move(args_json_);
  collector.record(std::move(event));
}

}  // namespace msehsim::obs
