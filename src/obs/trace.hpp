// Span tracing — pillar 3 of the observability layer.
//
// Scoped wall-clock timers around campaign jobs, trace compilation, MPP
// solves, and platform steps, collected into a process-wide buffer and
// exported as Chrome trace_event JSON ("ph":"X" complete events) that loads
// directly in Perfetto / chrome://tracing. The campaign pool's per-job
// queue-wait and run spans land on one track per worker, which makes the
// LPT schedule visible.
//
// Cost model, in three tiers:
//  - MSEHSIM_OBS_ENABLED=0 (CMake -DMSEHSIM_OBS=OFF): every OBS_SPAN site
//    compiles to nothing and TraceCollector::enable() is a no-op. Zero
//    overhead, bit-for-bit identical simulation results.
//  - Compiled in, collector disabled (the default at runtime): each span
//    site is one relaxed atomic load and a branch.
//  - Collector enabled: hot sites (per step, per MPP solve) go through
//    OBS_SPAN_SAMPLED, which records only every Nth entry per site
//    (TraceCollector::sample_every, default 1024) so a day-scale run emits
//    hundreds of spans, not hundreds of thousands. Coarse sites (per job,
//    per compile) always record.
//
// Wall-clock timestamps are inherently nondeterministic, so spans never
// feed RunResult or any exported metric — they are a diagnostic stream
// only. That separation is what keeps the to_string(RunResult) byte
// contract indifferent to tracing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#ifndef MSEHSIM_OBS_ENABLED
#define MSEHSIM_OBS_ENABLED 1
#endif

namespace msehsim::obs {

/// One complete ("ph":"X") Chrome trace event.
struct TraceEvent {
  std::string name;
  const char* category{"sim"};
  double ts_us{0.0};   ///< start, microseconds since enable()
  double dur_us{0.0};
  std::uint32_t tid{0};
  std::string args_json;  ///< pre-rendered `"k": v` pairs, may be empty
};

/// Process-wide span sink. Thread-safe: each thread records into its own
/// buffer (registered once, under the collector mutex), so recording never
/// contends across threads — span *sites* pay only a relaxed atomic load
/// while disabled, and a sampled-in record touches only the calling
/// thread's buffer. The buffers are drained (in thread-id order) when the
/// trace is serialized. One collector per process keeps the macros
/// dependency-free; campaigns own it for the duration of a traced run.
class TraceCollector {
 public:
  static TraceCollector& instance() {
    static TraceCollector collector;
    return collector;
  }

  /// Starts collecting: clears the buffer, re-anchors the epoch, sets the
  /// per-site sampling stride for OBS_SPAN_SAMPLED. No-op when compiled
  /// out.
  void enable(std::uint32_t sample_every = 1024);
  void disable();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the last enable() (monotonic).
  [[nodiscard]] double now_us() const;

  /// Dense id for the calling thread (first call assigns).
  [[nodiscard]] std::uint32_t thread_id();

  /// Perfetto track label for the calling thread ("ph":"M" metadata).
  void set_thread_name(const std::string& name);

  /// Appends one complete event. Silently drops (and counts) events beyond
  /// the buffer cap so a runaway trace cannot exhaust memory.
  void record(TraceEvent event);

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// The whole buffer as a Chrome trace_event JSON document.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Copies every in-memory event out, in thread-id order (each thread's
  /// events in record order) — the feed for obs::Profiler. Best-effort under
  /// disk streaming: spilled prefixes are not re-read, only each thread's
  /// in-memory tail (a profile is an aggregate, not an archive; the lossless
  /// surface is chrome_trace_json()).
  [[nodiscard]] std::vector<TraceEvent> snapshot_events() const;

  /// Writes chrome_trace_json() to @p path (throws SpecError on I/O error).
  void write_chrome_trace(const std::string& path) const;

  /// Per-thread buffer cap (events). Applies from the next record().
  void set_capacity(std::size_t events) { capacity_ = events; }

  /// Streams over-cap span volumes to disk instead of dropping them: when a
  /// thread's buffer hits the capacity cap, its events are flushed (in
  /// record order) to a per-thread spill file `spans-<tid>.jsonl` under
  /// @p dir and the buffer restarts empty — dropped() stays 0. The drain
  /// replays each thread's spill file ahead of its in-memory tail, so
  /// chrome_trace_json() stays lossless and tid-ordered, byte-identical to
  /// an uncapped all-in-memory run. Like enable(), call this before
  /// recording starts; an empty @p dir turns streaming back off.
  void stream_to_disk(const std::string& dir);

  /// Events flushed to spill files since the last enable().
  [[nodiscard]] std::uint64_t spilled() const {
    return spilled_.load(std::memory_order_relaxed);
  }

 private:
  TraceCollector() = default;

  /// One recording lane per thread. The owning thread appends under the
  /// buffer's own (uncontended) mutex; serialization takes the same lock
  /// per buffer, so drains are safe even against a still-recording thread
  /// without any cross-thread contention on the hot path.
  struct ThreadBuffer {
    ThreadBuffer();
    ~ThreadBuffer();  // out-of-line: std::ofstream is incomplete here
    mutable std::mutex mutex;  ///< locked by const drains too
    std::uint32_t tid{0};
    std::vector<TraceEvent> events;
    std::string spill_path;                ///< set when the first spill opens
    std::unique_ptr<std::ofstream> spill;  ///< open while this run streams
  };

  /// The calling thread's buffer (registered under mutex_ on first use,
  /// cached in a thread_local afterwards). Buffers live for the process
  /// lifetime — enable() clears their contents, never destroys them — so
  /// the cached pointer can never dangle.
  [[nodiscard]] ThreadBuffer& local_buffer();

  /// Flushes @p buffer's events to its spill file and clears it. Caller
  /// holds buffer.mutex.
  void spill_locked(ThreadBuffer& buffer);

  std::atomic<bool> enabled_{false};
  std::atomic<bool> stream_{false};
  std::atomic<std::uint32_t> sample_every_{1024};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> spilled_{0};
  std::string spill_dir_;  ///< set before recording starts (see stream_to_disk)
  std::size_t capacity_{1u << 20};
  std::chrono::steady_clock::time_point epoch_{};
  mutable std::mutex mutex_;  ///< registration, names, drain ordering
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<std::pair<std::uint32_t, std::string>> thread_names_;
  std::unordered_map<std::thread::id, std::uint32_t> thread_ids_;
};

/// RAII span: captures the start on construction, records on destruction.
/// Does nothing while the collector is disabled or @p name is null (how
/// OBS_SPAN_SAMPLED skips sampled-out entries). Construct through the
/// OBS_SPAN macros so MSEHSIM_OBS=OFF erases the site entirely. The
/// constructor and destructor are inline so a disabled site costs one
/// relaxed load and a branch without a function call.
class Span {
 public:
  Span(const char* name, const char* category, std::string args_json = {})
      : name_(name), category_(category), args_json_(std::move(args_json)) {
    if (name_ == nullptr) return;
    auto& collector = TraceCollector::instance();
    if (!collector.enabled()) return;
    start_us_ = collector.now_us();
    active_ = true;
  }
  ~Span() {
    if (active_) finish();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  /// Out-of-line slow path: builds the event and records it.
  void finish();

  const char* name_;
  const char* category_;
  std::string args_json_;
  double start_us_{0.0};
  bool active_{false};
};

namespace detail {
/// True for 1-in-sample_every() calls against @p site_counter. Inline and
/// lock-free: a relaxed enabled() check, then one relaxed fetch_add only
/// while recording.
[[nodiscard]] inline bool should_sample(
    std::atomic<std::uint64_t>& site_counter) {
  auto& collector = TraceCollector::instance();
  if (!collector.enabled()) return false;
  const std::uint64_t n = site_counter.fetch_add(1, std::memory_order_relaxed);
  return n % collector.sample_every() == 0;
}
}  // namespace detail

}  // namespace msehsim::obs

#if MSEHSIM_OBS_ENABLED
#define MSEHSIM_OBS_CONCAT2(a, b) a##b
#define MSEHSIM_OBS_CONCAT(a, b) MSEHSIM_OBS_CONCAT2(a, b)
/// Scoped span, recorded whenever the collector is enabled.
#define OBS_SPAN(name, category)                            \
  ::msehsim::obs::Span MSEHSIM_OBS_CONCAT(obs_span_,        \
                                          __LINE__){(name), (category)}
/// Scoped span recorded for 1 in TraceCollector::sample_every() entries of
/// this site — for per-step / per-solve hot paths.
#define OBS_SPAN_SAMPLED(name, category)                                      \
  static std::atomic<std::uint64_t> MSEHSIM_OBS_CONCAT(obs_site_,             \
                                                       __LINE__){0};          \
  ::msehsim::obs::Span MSEHSIM_OBS_CONCAT(obs_span_, __LINE__){               \
      ::msehsim::obs::detail::should_sample(                                  \
          MSEHSIM_OBS_CONCAT(obs_site_, __LINE__))                            \
          ? (name)                                                            \
          : nullptr,                                                          \
      (category)}
#else
#define OBS_SPAN(name, category) \
  do {                           \
  } while (false)
#define OBS_SPAN_SAMPLED(name, category) \
  do {                                   \
  } while (false)
#endif
