#include "obs/prometheus.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string_view>
#include <vector>

#include "core/error.hpp"
#include "core/fmt.hpp"

namespace msehsim::obs {

namespace {

// ---- renderer ------------------------------------------------------------

bool valid_name_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool valid_name_char(char c) {
  return valid_name_start(c) || (c >= '0' && c <= '9');
}

bool valid_label_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool valid_label_char(char c) {
  return valid_label_start(c) || (c >= '0' && c <= '9');
}

/// Prometheus value spelling: format_double for finite values, the
/// exposition format's canonical +Inf/-Inf/NaN for the rest.
std::string prom_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0.0 ? "+Inf" : "-Inf";
  return format_double(v);
}

std::string escape_label_value(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Splits a dotted metric name into the Prometheus family name and labels:
/// bracketed segments become `index`/`index2`/... label values, every
/// character outside the name grammar becomes '_', and @p prefix leads.
/// `ledger.source[0].share` -> ("<prefix>_ledger_source_share", {index="0"}).
struct MappedName {
  std::string family;
  std::string labels;  ///< rendered `k="v"` pairs, comma-separated, no braces
};

MappedName map_name(const std::string& name, const std::string& prefix) {
  MappedName mapped;
  mapped.family = prefix.empty() ? "" : prefix + "_";
  std::size_t label_ordinal = 0;
  std::size_t i = 0;
  while (i < name.size()) {
    const char c = name[i];
    if (c == '[') {
      const std::size_t close = name.find(']', i);
      const std::string value = close == std::string::npos
                                    ? name.substr(i + 1)
                                    : name.substr(i + 1, close - i - 1);
      ++label_ordinal;
      if (!mapped.labels.empty()) mapped.labels += ',';
      mapped.labels += "index";
      if (label_ordinal > 1) mapped.labels += std::to_string(label_ordinal);
      mapped.labels += "=\"" + escape_label_value(value) + '"';
      i = close == std::string::npos ? name.size() : close + 1;
      continue;
    }
    mapped.family += valid_name_char(c) ? c : '_';
    ++i;
  }
  // A bracket segment directly before '.' leaves "__" runs behind; collapse
  // a trailing '_' left by a bracket at the very end.
  while (mapped.family.size() > 1 && mapped.family.back() == '_' &&
         mapped.family[mapped.family.size() - 2] == '_')
    mapped.family.pop_back();
  return mapped;
}

const char* type_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

// ---- lint ----------------------------------------------------------------

/// Parses one exposition-format value token (+Inf/-Inf/NaN or a plain
/// decimal); nullopt on anything else.
std::optional<double> parse_prom_value(std::string_view token) {
  const auto ieq = [](std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const char ca = a[i] >= 'A' && a[i] <= 'Z' ? char(a[i] - 'A' + 'a') : a[i];
      const char cb = b[i] >= 'A' && b[i] <= 'Z' ? char(b[i] - 'A' + 'a') : b[i];
      if (ca != cb) return false;
    }
    return true;
  };
  if (ieq(token, "nan")) return std::nan("");
  if (ieq(token, "inf") || ieq(token, "+inf"))
    return std::numeric_limits<double>::infinity();
  if (ieq(token, "-inf")) return -std::numeric_limits<double>::infinity();
  return parse_double(token);
}

/// One parsed sample line.
struct Sample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;  ///< parse order
  double value{0.0};
};

/// Parses a sample line; returns an error message or "" with @p out filled.
std::string parse_sample(const std::string& line, Sample& out) {
  std::size_t i = 0;
  if (i >= line.size() || !valid_name_start(line[i]))
    return "metric name must start with [a-zA-Z_:]";
  while (i < line.size() && valid_name_char(line[i])) ++i;
  out.name = line.substr(0, i);
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (true) {
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      const std::size_t label_start = i;
      if (i >= line.size() || !valid_label_start(line[i]))
        return "label name must start with [a-zA-Z_]";
      while (i < line.size() && valid_label_char(line[i])) ++i;
      std::string label = line.substr(label_start, i - label_start);
      if (i >= line.size() || line[i] != '=') return "expected '=' after label name";
      ++i;
      if (i >= line.size() || line[i] != '"') return "label value must be quoted";
      ++i;
      std::string value;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') {
          if (i + 1 >= line.size()) return "dangling escape in label value";
          const char e = line[i + 1];
          if (e == '\\') value += '\\';
          else if (e == '"') value += '"';
          else if (e == 'n') value += '\n';
          else return "invalid escape in label value";
          i += 2;
          continue;
        }
        if (line[i] == '\n') return "raw newline in label value";
        value += line[i];
        ++i;
      }
      if (i >= line.size()) return "unterminated label value";
      ++i;  // closing quote
      out.labels.emplace_back(std::move(label), std::move(value));
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      return "expected ',' or '}' after label pair";
    }
  }
  if (i >= line.size() || (line[i] != ' ' && line[i] != '\t'))
    return "expected whitespace before value";
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  const std::size_t value_start = i;
  while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
  const auto value =
      parse_prom_value(std::string_view(line).substr(value_start, i - value_start));
  if (!value) return "unparseable value";
  out.value = *value;
  // Optional timestamp: integer milliseconds.
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i < line.size()) {
    std::size_t ts = i;
    if (line[ts] == '-' || line[ts] == '+') ++ts;
    if (ts >= line.size()) return "malformed timestamp";
    for (; ts < line.size(); ++ts)
      if (line[ts] < '0' || line[ts] > '9') return "malformed timestamp";
  }
  return "";
}

/// Per-label-group histogram bookkeeping while a histogram family is open.
struct HistGroup {
  double last_le = -std::numeric_limits<double>::infinity();
  double last_cum = -1.0;
  bool has_inf{false};
  double inf_value{0.0};
  bool has_sum{false};
  bool has_count{false};
  double count_value{0.0};
};

std::string canonical_labels(
    const std::vector<std::pair<std::string, std::string>>& labels,
    bool drop_le) {
  std::vector<std::pair<std::string, std::string>> sorted;
  for (const auto& kv : labels) {
    if (drop_le && kv.first == "le") continue;
    sorted.push_back(kv);
  }
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [k, v] : sorted) out += k + "\x1f" + v + "\x1e";
  return out;
}

}  // namespace

std::string prometheus_text(const MetricsSnapshot& snapshot,
                            const std::string& prefix) {
  struct FamilySample {
    std::string labels;
    const MetricRow* row;
  };
  struct Family {
    MetricKind kind{MetricKind::kGauge};
    std::string help;  ///< first-seen dotted name (bracket indices elided)
    std::vector<FamilySample> samples;
  };
  // std::map keeps the families in sorted order — the document is then a
  // pure function of the (already name-sorted) snapshot.
  std::map<std::string, Family> families;
  for (const auto& row : snapshot.rows) {
    MappedName mapped = map_name(row.name, prefix);
    if (row.kind == MetricKind::kCounter) {
      // The exposition convention: counters end in _total.
      if (mapped.family.size() < 6 ||
          mapped.family.compare(mapped.family.size() - 6, 6, "_total") != 0)
        mapped.family += "_total";
    }
    auto [it, inserted] = families.try_emplace(mapped.family);
    if (inserted) {
      it->second.kind = row.kind;
      it->second.help = row.name;
    } else {
      require_spec(it->second.kind == row.kind,
                   "prometheus_text: rows '" + it->second.help + "' and '" +
                       row.name + "' sanitize onto family '" + mapped.family +
                       "' with different kinds");
    }
    it->second.samples.push_back({std::move(mapped.labels), &row});
  }

  std::string out;
  out.reserve(snapshot.rows.size() * 64);
  for (const auto& [family, data] : families) {
    out += "# HELP " + family + " msehsim metric " + escape_help(data.help) +
           "\n";
    out += "# TYPE " + family + " " + type_name(data.kind) + "\n";
    for (const auto& sample : data.samples) {
      const MetricRow& row = *sample.row;
      const std::string braced =
          sample.labels.empty() ? "" : "{" + sample.labels + "}";
      switch (data.kind) {
        case MetricKind::kCounter:
          out += family + braced + " " + std::to_string(row.count) + "\n";
          break;
        case MetricKind::kGauge:
          out += family + braced + " " + prom_value(row.value) + "\n";
          break;
        case MetricKind::kHistogram: {
          // The repo's buckets are per-bin; the exposition format wants
          // cumulative counts-at-or-below each bound, closed by +Inf ==
          // _count.
          const std::string sep = sample.labels.empty() ? "" : ",";
          std::uint64_t cum = 0;
          for (std::size_t b = 0; b < row.bounds.size(); ++b) {
            cum += row.buckets[b];
            out += family + "_bucket{" + sample.labels + sep + "le=\"" +
                   prom_value(row.bounds[b]) + "\"} " + std::to_string(cum) +
                   "\n";
          }
          out += family + "_bucket{" + sample.labels + sep + "le=\"+Inf\"} " +
                 std::to_string(row.count) + "\n";
          out += family + "_sum" + braced + " " + prom_value(row.sum) + "\n";
          out += family + "_count" + braced + " " + std::to_string(row.count) +
                 "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string prometheus_lint(const std::string& text) {
  if (text.empty()) return "";
  if (text.back() != '\n') return "line 1: document must end with a newline";

  std::set<std::string> closed_families;
  std::set<std::string> series_seen;
  std::string fam;
  std::string fam_type;
  bool fam_has_help = false;
  bool fam_has_type = false;
  std::size_t fam_samples = 0;
  std::map<std::string, HistGroup> hist_groups;

  // Validates the histogram invariants of the family being closed; returns
  // an error suffix or "".
  const auto close_family = [&]() -> std::string {
    if (!fam.empty()) closed_families.insert(fam);
    if (fam_type == "histogram") {
      if (fam_samples == 0) return "histogram family '" + fam + "' has no samples";
      for (const auto& [labels, group] : hist_groups) {
        (void)labels;
        if (!group.has_inf)
          return "histogram '" + fam + "' is missing its le=\"+Inf\" bucket";
        if (!group.has_count)
          return "histogram '" + fam + "' is missing " + fam + "_count";
        if (!group.has_sum)
          return "histogram '" + fam + "' is missing " + fam + "_sum";
        if (group.inf_value != group.count_value)
          return "histogram '" + fam + "': le=\"+Inf\" bucket (" +
                 format_double(group.inf_value) + ") != _count (" +
                 format_double(group.count_value) + ")";
      }
    }
    hist_groups.clear();
    fam_has_help = fam_has_type = false;
    fam_samples = 0;
    fam_type.clear();
    return "";
  };

  std::size_t line_no = 0;
  std::size_t pos = 0;
  std::size_t close_line = 0;  // line that opened the family, for close errors
  while (pos < text.size()) {
    ++line_no;
    const std::size_t eol = text.find('\n', pos);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const auto err = [&](const std::string& message) {
      return "line " + std::to_string(line_no) + ": " + message;
    };

    if (line.empty()) continue;
    if (line[0] == '#') {
      // `# HELP name text` / `# TYPE name type`; any other comment is legal
      // and ignored.
      if (line.rfind("# HELP ", 0) != 0 && line.rfind("# TYPE ", 0) != 0)
        continue;
      const bool is_help = line.rfind("# HELP ", 0) == 0;
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      const std::string name = rest.substr(0, space);
      if (name.empty() || !valid_name_start(name[0]))
        return err("invalid metric name in comment");
      for (const char c : name)
        if (!valid_name_char(c)) return err("invalid metric name in comment");
      if (name != fam) {
        if (const std::string closing = close_family(); !closing.empty())
          return "line " + std::to_string(close_line) + ": " + closing;
        if (closed_families.count(name) != 0)
          return err("family '" + name + "' interleaved (seen earlier)");
        fam = name;
        close_line = line_no;
      }
      if (fam_samples != 0)
        return err("HELP/TYPE after samples of family '" + fam + "'");
      if (is_help) {
        if (fam_has_help) return err("duplicate HELP for '" + fam + "'");
        fam_has_help = true;
      } else {
        if (fam_has_type) return err("duplicate TYPE for '" + fam + "'");
        if (space == std::string::npos) return err("TYPE is missing its type");
        const std::string type = rest.substr(space + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped")
          return err("unknown type '" + type + "'");
        fam_has_type = true;
        fam_type = type;
      }
      continue;
    }

    Sample sample;
    if (const std::string message = parse_sample(line, sample);
        !message.empty())
      return err(message);
    if (!fam_has_type)
      return err("sample '" + sample.name + "' before any # TYPE");
    const bool in_family =
        sample.name == fam ||
        (fam_type == "histogram" &&
         (sample.name == fam + "_bucket" || sample.name == fam + "_sum" ||
          sample.name == fam + "_count")) ||
        (fam_type == "summary" &&
         (sample.name == fam + "_sum" || sample.name == fam + "_count"));
    if (!in_family)
      return err("sample '" + sample.name + "' outside family '" + fam + "'");
    ++fam_samples;

    const std::string series_key =
        sample.name + "\x1d" + canonical_labels(sample.labels, false);
    if (!series_seen.insert(series_key).second)
      return err("duplicate series '" + sample.name + "'");

    if (fam_type == "counter") {
      if (std::isnan(sample.value) || sample.value < 0.0)
        return err("counter '" + sample.name + "' has a negative or NaN value");
    }
    if (fam_type == "histogram") {
      const std::string group_key = canonical_labels(sample.labels, true);
      HistGroup& group = hist_groups[group_key];
      if (sample.name == fam + "_bucket") {
        std::string le;
        bool has_le = false;
        for (const auto& [k, v] : sample.labels)
          if (k == "le") {
            le = v;
            has_le = true;
          }
        if (!has_le) return err("histogram bucket without an le label");
        const auto le_value = parse_prom_value(le);
        if (!le_value) return err("unparseable le value '" + le + "'");
        if (std::isnan(sample.value) || sample.value < 0.0)
          return err("negative or NaN bucket count");
        if (*le_value <= group.last_le)
          return err("le values not ascending at le=\"" + le + "\"");
        if (sample.value < group.last_cum)
          return err("cumulative bucket counts decreased at le=\"" + le + "\"");
        group.last_le = *le_value;
        group.last_cum = sample.value;
        if (std::isinf(*le_value) && *le_value > 0.0) {
          group.has_inf = true;
          group.inf_value = sample.value;
        }
      } else if (sample.name == fam + "_sum") {
        if (group.has_sum) return err("duplicate _sum for one label set");
        group.has_sum = true;
      } else if (sample.name == fam + "_count") {
        if (group.has_count) return err("duplicate _count for one label set");
        group.has_count = true;
        group.count_value = sample.value;
      }
    }
  }
  if (const std::string closing = close_family(); !closing.empty())
    return "line " + std::to_string(close_line) + ": " + closing;
  return "";
}

}  // namespace msehsim::obs
