#include "obs/timeline.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/fmt.hpp"

namespace msehsim::obs {

Timeline::Timeline(Seconds cadence, std::vector<std::string> columns)
    : cadence_(cadence), columns_(std::move(columns)) {
  require_spec(cadence_.value() > 0.0, "Timeline cadence must be > 0");
  require_spec(!columns_.empty(), "Timeline needs >= 1 column");
  data_.resize(columns_.size());
}

void Timeline::reserve(std::size_t samples) {
  t_s_.reserve(samples);
  for (auto& col : data_) col.reserve(samples);
}

void Timeline::append(double t_s, const double* values, std::size_t count) {
  require_spec(count == columns_.size(),
               "Timeline::append: row width does not match the column table");
  t_s_.push_back(t_s);
  for (std::size_t i = 0; i < count; ++i) data_[i].push_back(values[i]);
}

std::size_t Timeline::find_column(const std::string& name) const {
  const auto it = std::find(columns_.begin(), columns_.end(), name);
  return it == columns_.end()
             ? npos
             : static_cast<std::size_t>(it - columns_.begin());
}

std::string Timeline::csv() const {
  std::string out = "t_s";
  for (const auto& name : columns_) {
    out += ',';
    out += name;
  }
  out += '\n';
  for (std::size_t row = 0; row < t_s_.size(); ++row) {
    append_double(out, t_s_[row]);
    for (const auto& col : data_) {
      out += ',';
      append_double(out, col[row]);
    }
    out += '\n';
  }
  return out;
}

std::string Timeline::json() const {
  std::string out = "{\"cadence_s\": ";
  append_double(out, cadence_.value());
  out += ", \"columns\": [";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) out += ", ";
    out += '"';
    out += columns_[i];  // column names are identifiers, nothing to escape
    out += '"';
  }
  out += "], \"samples\": [";
  for (std::size_t row = 0; row < t_s_.size(); ++row) {
    out += row == 0 ? "[" : ", [";
    append_double(out, t_s_[row]);
    for (const auto& col : data_) {
      out += ", ";
      append_double(out, col[row]);
    }
    out += ']';
  }
  out += "]}";
  return out;
}

MetricsSnapshot Timeline::metrics_snapshot() const {
  Registry registry;
  registry.counter("timeline.samples").add(t_s_.size());
  registry.gauge("timeline.cadence_s").set(cadence_.value());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    const auto& col = data_[i];
    const std::string prefix = "timeline." + columns_[i];
    double last = 0.0, lo = 0.0, hi = 0.0;
    if (!col.empty()) {
      last = col.back();
      const auto [min_it, max_it] = std::minmax_element(col.begin(), col.end());
      lo = *min_it;
      hi = *max_it;
    }
    registry.gauge(prefix + ".last").set(last);
    registry.gauge(prefix + ".min").set(lo);
    registry.gauge(prefix + ".max").set(hi);
  }
  return registry.snapshot();
}

}  // namespace msehsim::obs
