#include "obs/profiler.hpp"

#include <algorithm>
#include <map>

#include "core/fmt.hpp"

namespace msehsim::obs {

namespace {

/// Containment slack in microseconds: a child span's destructor runs before
/// its parent's, but the two end timestamps are separate clock reads, so an
/// exact comparison would misfile ties.
constexpr double kEpsUs = 1e-3;

ProfileNode& child_named(ProfileNode& parent, const std::string& name) {
  for (auto& child : parent.children)
    if (child.name == name) return child;
  parent.children.emplace_back();
  parent.children.back().name = name;
  return parent.children.back();
}

void append_report(std::string& out, const ProfileNode& node,
                   double parent_total_us, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += node.name;
  out += "  count=" + std::to_string(node.count);
  out += " total=" + format_double_fixed(node.total_us / 1000.0, 3) + "ms";
  out += " self=" + format_double_fixed(node.self_us() / 1000.0, 3) + "ms";
  if (parent_total_us > 0.0) {
    out += " (" +
           format_double_fixed(100.0 * node.total_us / parent_total_us, 1) +
           "% of parent)";
  }
  out += '\n';
  for (const auto& child : node.children)
    append_report(out, child, node.total_us, depth + 1);
}

void append_rows(std::vector<MetricRow>& rows, const ProfileNode& node,
                 const std::string& path) {
  MetricRow hist;
  hist.name = "profile." + path;
  hist.kind = MetricKind::kHistogram;
  hist.count = node.durations_us.count();
  hist.sum = node.durations_us.sum();
  hist.min = node.durations_us.min();
  hist.max = node.durations_us.max();
  hist.bounds = node.durations_us.bounds();
  hist.buckets = node.durations_us.buckets();
  rows.push_back(std::move(hist));

  MetricRow self;
  self.name = "profile." + path + ".self_us";
  self.kind = MetricKind::kGauge;
  self.value = node.self_us();
  rows.push_back(std::move(self));

  for (const auto& child : node.children)
    append_rows(rows, child, path + "/" + child.name);
}

}  // namespace

const std::vector<double>& profile_duration_bounds_us() {
  static const std::vector<double> kBounds = {1.0,    10.0,    100.0,  1e3,
                                              1e4,    1e5,     1e6};
  return kBounds;
}

void Profiler::add_events(const std::vector<TraceEvent>& events) {
  // Per-thread, because nesting is a property of one thread's stack.
  std::map<std::uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const auto& event : events) by_tid[event.tid].push_back(&event);

  for (auto& [tid, thread_events] : by_tid) {
    (void)tid;
    std::stable_sort(thread_events.begin(), thread_events.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
                       return a->dur_us > b->dur_us;
                     });
    // Stack of (node, span end): an event nests under the deepest still-open
    // span that contains it; anything it extends past gets popped first.
    std::vector<std::pair<ProfileNode*, double>> stack;
    for (const TraceEvent* event : thread_events) {
      const double end_us = event->ts_us + event->dur_us;
      while (!stack.empty() && end_us > stack.back().second + kEpsUs)
        stack.pop_back();
      ProfileNode& parent = stack.empty() ? root_ : *stack.back().first;
      ProfileNode& node = child_named(parent, event->name);
      node.count += 1;
      node.total_us += event->dur_us;
      node.durations_us.observe(event->dur_us);
      parent.child_us += event->dur_us;
      stack.emplace_back(&node, end_us);
    }
  }
  root_.total_us = root_.child_us;  // the root is the sum of its phases
}

Profiler Profiler::from_collector() {
  Profiler profiler;
  profiler.add_events(TraceCollector::instance().snapshot_events());
  return profiler;
}

std::string Profiler::report() const {
  std::string out;
  for (const auto& child : root_.children)
    append_report(out, child, root_.total_us, 0);
  return out;
}

MetricsSnapshot Profiler::metrics_snapshot() const {
  MetricsSnapshot snap;
  for (const auto& child : root_.children)
    append_rows(snap.rows, child, child.name);
  std::sort(snap.rows.begin(), snap.rows.end(),
            [](const MetricRow& a, const MetricRow& b) {
              return a.name < b.name;
            });
  return snap;
}

}  // namespace msehsim::obs
