# Empty compiler generated dependencies file for msehsim_bus.
# This may be replaced when dependencies are built.
