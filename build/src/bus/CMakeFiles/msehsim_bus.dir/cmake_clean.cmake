file(REMOVE_RECURSE
  "CMakeFiles/msehsim_bus.dir/datasheet.cpp.o"
  "CMakeFiles/msehsim_bus.dir/datasheet.cpp.o.d"
  "CMakeFiles/msehsim_bus.dir/i2c.cpp.o"
  "CMakeFiles/msehsim_bus.dir/i2c.cpp.o.d"
  "CMakeFiles/msehsim_bus.dir/module_port.cpp.o"
  "CMakeFiles/msehsim_bus.dir/module_port.cpp.o.d"
  "CMakeFiles/msehsim_bus.dir/sense.cpp.o"
  "CMakeFiles/msehsim_bus.dir/sense.cpp.o.d"
  "libmsehsim_bus.a"
  "libmsehsim_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msehsim_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
