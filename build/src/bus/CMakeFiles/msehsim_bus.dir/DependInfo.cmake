
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bus/datasheet.cpp" "src/bus/CMakeFiles/msehsim_bus.dir/datasheet.cpp.o" "gcc" "src/bus/CMakeFiles/msehsim_bus.dir/datasheet.cpp.o.d"
  "/root/repo/src/bus/i2c.cpp" "src/bus/CMakeFiles/msehsim_bus.dir/i2c.cpp.o" "gcc" "src/bus/CMakeFiles/msehsim_bus.dir/i2c.cpp.o.d"
  "/root/repo/src/bus/module_port.cpp" "src/bus/CMakeFiles/msehsim_bus.dir/module_port.cpp.o" "gcc" "src/bus/CMakeFiles/msehsim_bus.dir/module_port.cpp.o.d"
  "/root/repo/src/bus/sense.cpp" "src/bus/CMakeFiles/msehsim_bus.dir/sense.cpp.o" "gcc" "src/bus/CMakeFiles/msehsim_bus.dir/sense.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/msehsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harvest/CMakeFiles/msehsim_harvest.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/msehsim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/msehsim_env.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
