file(REMOVE_RECURSE
  "libmsehsim_bus.a"
)
