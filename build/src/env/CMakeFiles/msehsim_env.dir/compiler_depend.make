# Empty compiler generated dependencies file for msehsim_env.
# This may be replaced when dependencies are built.
