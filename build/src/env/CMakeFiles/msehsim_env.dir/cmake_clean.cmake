file(REMOVE_RECURSE
  "CMakeFiles/msehsim_env.dir/channels.cpp.o"
  "CMakeFiles/msehsim_env.dir/channels.cpp.o.d"
  "CMakeFiles/msehsim_env.dir/environment.cpp.o"
  "CMakeFiles/msehsim_env.dir/environment.cpp.o.d"
  "libmsehsim_env.a"
  "libmsehsim_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msehsim_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
