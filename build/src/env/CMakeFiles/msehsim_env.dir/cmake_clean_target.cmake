file(REMOVE_RECURSE
  "libmsehsim_env.a"
)
