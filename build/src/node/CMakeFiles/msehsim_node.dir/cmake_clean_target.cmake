file(REMOVE_RECURSE
  "libmsehsim_node.a"
)
