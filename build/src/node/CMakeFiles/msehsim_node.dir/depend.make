# Empty dependencies file for msehsim_node.
# This may be replaced when dependencies are built.
