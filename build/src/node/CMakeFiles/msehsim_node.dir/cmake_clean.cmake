file(REMOVE_RECURSE
  "CMakeFiles/msehsim_node.dir/sensor_node.cpp.o"
  "CMakeFiles/msehsim_node.dir/sensor_node.cpp.o.d"
  "libmsehsim_node.a"
  "libmsehsim_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msehsim_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
