
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/sensor_node.cpp" "src/node/CMakeFiles/msehsim_node.dir/sensor_node.cpp.o" "gcc" "src/node/CMakeFiles/msehsim_node.dir/sensor_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/msehsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
