# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("env")
subdirs("harvest")
subdirs("storage")
subdirs("power")
subdirs("node")
subdirs("bus")
subdirs("manager")
subdirs("taxonomy")
subdirs("systems")
