
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/chain.cpp" "src/power/CMakeFiles/msehsim_power.dir/chain.cpp.o" "gcc" "src/power/CMakeFiles/msehsim_power.dir/chain.cpp.o.d"
  "/root/repo/src/power/converter.cpp" "src/power/CMakeFiles/msehsim_power.dir/converter.cpp.o" "gcc" "src/power/CMakeFiles/msehsim_power.dir/converter.cpp.o.d"
  "/root/repo/src/power/mppt.cpp" "src/power/CMakeFiles/msehsim_power.dir/mppt.cpp.o" "gcc" "src/power/CMakeFiles/msehsim_power.dir/mppt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/msehsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/msehsim_env.dir/DependInfo.cmake"
  "/root/repo/build/src/harvest/CMakeFiles/msehsim_harvest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
