# Empty dependencies file for msehsim_power.
# This may be replaced when dependencies are built.
