file(REMOVE_RECURSE
  "libmsehsim_power.a"
)
