file(REMOVE_RECURSE
  "CMakeFiles/msehsim_power.dir/chain.cpp.o"
  "CMakeFiles/msehsim_power.dir/chain.cpp.o.d"
  "CMakeFiles/msehsim_power.dir/converter.cpp.o"
  "CMakeFiles/msehsim_power.dir/converter.cpp.o.d"
  "CMakeFiles/msehsim_power.dir/mppt.cpp.o"
  "CMakeFiles/msehsim_power.dir/mppt.cpp.o.d"
  "libmsehsim_power.a"
  "libmsehsim_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msehsim_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
