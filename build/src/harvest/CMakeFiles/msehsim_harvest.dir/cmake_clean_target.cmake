file(REMOVE_RECURSE
  "libmsehsim_harvest.a"
)
