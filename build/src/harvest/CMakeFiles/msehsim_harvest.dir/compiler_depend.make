# Empty compiler generated dependencies file for msehsim_harvest.
# This may be replaced when dependencies are built.
