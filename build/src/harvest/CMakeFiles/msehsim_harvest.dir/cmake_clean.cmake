file(REMOVE_RECURSE
  "CMakeFiles/msehsim_harvest.dir/combiner.cpp.o"
  "CMakeFiles/msehsim_harvest.dir/combiner.cpp.o.d"
  "CMakeFiles/msehsim_harvest.dir/harvester.cpp.o"
  "CMakeFiles/msehsim_harvest.dir/harvester.cpp.o.d"
  "CMakeFiles/msehsim_harvest.dir/transducers.cpp.o"
  "CMakeFiles/msehsim_harvest.dir/transducers.cpp.o.d"
  "libmsehsim_harvest.a"
  "libmsehsim_harvest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msehsim_harvest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
