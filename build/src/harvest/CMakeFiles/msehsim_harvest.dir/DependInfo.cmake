
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harvest/combiner.cpp" "src/harvest/CMakeFiles/msehsim_harvest.dir/combiner.cpp.o" "gcc" "src/harvest/CMakeFiles/msehsim_harvest.dir/combiner.cpp.o.d"
  "/root/repo/src/harvest/harvester.cpp" "src/harvest/CMakeFiles/msehsim_harvest.dir/harvester.cpp.o" "gcc" "src/harvest/CMakeFiles/msehsim_harvest.dir/harvester.cpp.o.d"
  "/root/repo/src/harvest/transducers.cpp" "src/harvest/CMakeFiles/msehsim_harvest.dir/transducers.cpp.o" "gcc" "src/harvest/CMakeFiles/msehsim_harvest.dir/transducers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/msehsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/msehsim_env.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
