# Empty dependencies file for msehsim_taxonomy.
# This may be replaced when dependencies are built.
