file(REMOVE_RECURSE
  "libmsehsim_taxonomy.a"
)
