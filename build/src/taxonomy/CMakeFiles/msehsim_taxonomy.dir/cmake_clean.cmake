file(REMOVE_RECURSE
  "CMakeFiles/msehsim_taxonomy.dir/taxonomy.cpp.o"
  "CMakeFiles/msehsim_taxonomy.dir/taxonomy.cpp.o.d"
  "libmsehsim_taxonomy.a"
  "libmsehsim_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msehsim_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
