file(REMOVE_RECURSE
  "libmsehsim_storage.a"
)
