
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/battery.cpp" "src/storage/CMakeFiles/msehsim_storage.dir/battery.cpp.o" "gcc" "src/storage/CMakeFiles/msehsim_storage.dir/battery.cpp.o.d"
  "/root/repo/src/storage/fuel_cell.cpp" "src/storage/CMakeFiles/msehsim_storage.dir/fuel_cell.cpp.o" "gcc" "src/storage/CMakeFiles/msehsim_storage.dir/fuel_cell.cpp.o.d"
  "/root/repo/src/storage/supercapacitor.cpp" "src/storage/CMakeFiles/msehsim_storage.dir/supercapacitor.cpp.o" "gcc" "src/storage/CMakeFiles/msehsim_storage.dir/supercapacitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/msehsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
