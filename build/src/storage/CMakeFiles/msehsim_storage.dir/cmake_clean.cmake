file(REMOVE_RECURSE
  "CMakeFiles/msehsim_storage.dir/battery.cpp.o"
  "CMakeFiles/msehsim_storage.dir/battery.cpp.o.d"
  "CMakeFiles/msehsim_storage.dir/fuel_cell.cpp.o"
  "CMakeFiles/msehsim_storage.dir/fuel_cell.cpp.o.d"
  "CMakeFiles/msehsim_storage.dir/supercapacitor.cpp.o"
  "CMakeFiles/msehsim_storage.dir/supercapacitor.cpp.o.d"
  "libmsehsim_storage.a"
  "libmsehsim_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msehsim_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
