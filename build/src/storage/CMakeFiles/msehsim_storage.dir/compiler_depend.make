# Empty compiler generated dependencies file for msehsim_storage.
# This may be replaced when dependencies are built.
