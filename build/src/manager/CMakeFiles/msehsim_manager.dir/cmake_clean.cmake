file(REMOVE_RECURSE
  "CMakeFiles/msehsim_manager.dir/monitor.cpp.o"
  "CMakeFiles/msehsim_manager.dir/monitor.cpp.o.d"
  "CMakeFiles/msehsim_manager.dir/policies.cpp.o"
  "CMakeFiles/msehsim_manager.dir/policies.cpp.o.d"
  "CMakeFiles/msehsim_manager.dir/predictor.cpp.o"
  "CMakeFiles/msehsim_manager.dir/predictor.cpp.o.d"
  "libmsehsim_manager.a"
  "libmsehsim_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msehsim_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
