# Empty compiler generated dependencies file for msehsim_manager.
# This may be replaced when dependencies are built.
