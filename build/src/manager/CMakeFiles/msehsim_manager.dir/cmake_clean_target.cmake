file(REMOVE_RECURSE
  "libmsehsim_manager.a"
)
