file(REMOVE_RECURSE
  "CMakeFiles/msehsim_core.dir/csv.cpp.o"
  "CMakeFiles/msehsim_core.dir/csv.cpp.o.d"
  "CMakeFiles/msehsim_core.dir/random.cpp.o"
  "CMakeFiles/msehsim_core.dir/random.cpp.o.d"
  "CMakeFiles/msehsim_core.dir/simulation.cpp.o"
  "CMakeFiles/msehsim_core.dir/simulation.cpp.o.d"
  "CMakeFiles/msehsim_core.dir/solve.cpp.o"
  "CMakeFiles/msehsim_core.dir/solve.cpp.o.d"
  "CMakeFiles/msehsim_core.dir/stats.cpp.o"
  "CMakeFiles/msehsim_core.dir/stats.cpp.o.d"
  "CMakeFiles/msehsim_core.dir/table.cpp.o"
  "CMakeFiles/msehsim_core.dir/table.cpp.o.d"
  "libmsehsim_core.a"
  "libmsehsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msehsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
