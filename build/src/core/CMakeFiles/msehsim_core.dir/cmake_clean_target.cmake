file(REMOVE_RECURSE
  "libmsehsim_core.a"
)
