# Empty compiler generated dependencies file for msehsim_core.
# This may be replaced when dependencies are built.
