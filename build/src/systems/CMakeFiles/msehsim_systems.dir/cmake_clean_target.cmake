file(REMOVE_RECURSE
  "libmsehsim_systems.a"
)
