file(REMOVE_RECURSE
  "CMakeFiles/msehsim_systems.dir/catalog.cpp.o"
  "CMakeFiles/msehsim_systems.dir/catalog.cpp.o.d"
  "CMakeFiles/msehsim_systems.dir/platform.cpp.o"
  "CMakeFiles/msehsim_systems.dir/platform.cpp.o.d"
  "CMakeFiles/msehsim_systems.dir/runner.cpp.o"
  "CMakeFiles/msehsim_systems.dir/runner.cpp.o.d"
  "libmsehsim_systems.a"
  "libmsehsim_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msehsim_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
