# Empty compiler generated dependencies file for msehsim_systems.
# This may be replaced when dependencies are built.
