# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_units[1]_include.cmake")
include("/root/repo/build/tests/test_random[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_simulation[1]_include.cmake")
include("/root/repo/build/tests/test_solve[1]_include.cmake")
include("/root/repo/build/tests/test_table_csv[1]_include.cmake")
include("/root/repo/build/tests/test_env[1]_include.cmake")
include("/root/repo/build/tests/test_harvesters[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_converter[1]_include.cmake")
include("/root/repo/build/tests/test_mppt[1]_include.cmake")
include("/root/repo/build/tests/test_chain[1]_include.cmake")
include("/root/repo/build/tests/test_node[1]_include.cmake")
include("/root/repo/build/tests/test_bus[1]_include.cmake")
include("/root/repo/build/tests/test_datasheet[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_taxonomy[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_catalog[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_combiner[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
