# Empty dependencies file for test_harvesters.
# This may be replaced when dependencies are built.
