file(REMOVE_RECURSE
  "CMakeFiles/test_harvesters.dir/test_harvesters.cpp.o"
  "CMakeFiles/test_harvesters.dir/test_harvesters.cpp.o.d"
  "test_harvesters"
  "test_harvesters.pdb"
  "test_harvesters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_harvesters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
