# Empty compiler generated dependencies file for test_datasheet.
# This may be replaced when dependencies are built.
