file(REMOVE_RECURSE
  "CMakeFiles/test_datasheet.dir/test_datasheet.cpp.o"
  "CMakeFiles/test_datasheet.dir/test_datasheet.cpp.o.d"
  "test_datasheet"
  "test_datasheet.pdb"
  "test_datasheet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datasheet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
