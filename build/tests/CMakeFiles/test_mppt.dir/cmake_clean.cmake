file(REMOVE_RECURSE
  "CMakeFiles/test_mppt.dir/test_mppt.cpp.o"
  "CMakeFiles/test_mppt.dir/test_mppt.cpp.o.d"
  "test_mppt"
  "test_mppt.pdb"
  "test_mppt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mppt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
