file(REMOVE_RECURSE
  "CMakeFiles/bench_simkernel.dir/bench_simkernel.cpp.o"
  "CMakeFiles/bench_simkernel.dir/bench_simkernel.cpp.o.d"
  "bench_simkernel"
  "bench_simkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
