# Empty compiler generated dependencies file for bench_simkernel.
# This may be replaced when dependencies are built.
