file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_sizing.dir/bench_storage_sizing.cpp.o"
  "CMakeFiles/bench_storage_sizing.dir/bench_storage_sizing.cpp.o.d"
  "bench_storage_sizing"
  "bench_storage_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
