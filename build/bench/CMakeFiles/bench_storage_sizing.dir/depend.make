# Empty dependencies file for bench_storage_sizing.
# This may be replaced when dependencies are built.
