# Empty compiler generated dependencies file for bench_wakeup_radio.
# This may be replaced when dependencies are built.
