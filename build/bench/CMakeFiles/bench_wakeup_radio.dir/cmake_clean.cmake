file(REMOVE_RECURSE
  "CMakeFiles/bench_wakeup_radio.dir/bench_wakeup_radio.cpp.o"
  "CMakeFiles/bench_wakeup_radio.dir/bench_wakeup_radio.cpp.o.d"
  "bench_wakeup_radio"
  "bench_wakeup_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wakeup_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
