# Empty compiler generated dependencies file for bench_quiescent.
# This may be replaced when dependencies are built.
