file(REMOVE_RECURSE
  "CMakeFiles/bench_quiescent.dir/bench_quiescent.cpp.o"
  "CMakeFiles/bench_quiescent.dir/bench_quiescent.cpp.o.d"
  "bench_quiescent"
  "bench_quiescent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quiescent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
