# Empty dependencies file for bench_smart_harvester.
# This may be replaced when dependencies are built.
