file(REMOVE_RECURSE
  "CMakeFiles/bench_smart_harvester.dir/bench_smart_harvester.cpp.o"
  "CMakeFiles/bench_smart_harvester.dir/bench_smart_harvester.cpp.o.d"
  "bench_smart_harvester"
  "bench_smart_harvester.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smart_harvester.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
