# Empty compiler generated dependencies file for bench_combiner.
# This may be replaced when dependencies are built.
