file(REMOVE_RECURSE
  "CMakeFiles/bench_combiner.dir/bench_combiner.cpp.o"
  "CMakeFiles/bench_combiner.dir/bench_combiner.cpp.o.d"
  "bench_combiner"
  "bench_combiner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_combiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
