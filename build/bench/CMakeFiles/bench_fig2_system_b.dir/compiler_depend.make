# Empty compiler generated dependencies file for bench_fig2_system_b.
# This may be replaced when dependencies are built.
