# Empty compiler generated dependencies file for bench_mppt_overhead.
# This may be replaced when dependencies are built.
