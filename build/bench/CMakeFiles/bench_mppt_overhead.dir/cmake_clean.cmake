file(REMOVE_RECURSE
  "CMakeFiles/bench_mppt_overhead.dir/bench_mppt_overhead.cpp.o"
  "CMakeFiles/bench_mppt_overhead.dir/bench_mppt_overhead.cpp.o.d"
  "bench_mppt_overhead"
  "bench_mppt_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mppt_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
