file(REMOVE_RECURSE
  "CMakeFiles/bench_seasonal.dir/bench_seasonal.cpp.o"
  "CMakeFiles/bench_seasonal.dir/bench_seasonal.cpp.o.d"
  "bench_seasonal"
  "bench_seasonal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seasonal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
