# Empty compiler generated dependencies file for bench_seasonal.
# This may be replaced when dependencies are built.
