# Empty dependencies file for bench_hotswap_awareness.
# This may be replaced when dependencies are built.
