file(REMOVE_RECURSE
  "CMakeFiles/bench_hotswap_awareness.dir/bench_hotswap_awareness.cpp.o"
  "CMakeFiles/bench_hotswap_awareness.dir/bench_hotswap_awareness.cpp.o.d"
  "bench_hotswap_awareness"
  "bench_hotswap_awareness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hotswap_awareness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
