file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_system_a.dir/bench_fig1_system_a.cpp.o"
  "CMakeFiles/bench_fig1_system_a.dir/bench_fig1_system_a.cpp.o.d"
  "bench_fig1_system_a"
  "bench_fig1_system_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_system_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
