# Empty dependencies file for bench_fig1_system_a.
# This may be replaced when dependencies are built.
