# Empty dependencies file for smart_harvester_demo.
# This may be replaced when dependencies are built.
