file(REMOVE_RECURSE
  "CMakeFiles/smart_harvester_demo.dir/smart_harvester_demo.cpp.o"
  "CMakeFiles/smart_harvester_demo.dir/smart_harvester_demo.cpp.o.d"
  "smart_harvester_demo"
  "smart_harvester_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_harvester_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
