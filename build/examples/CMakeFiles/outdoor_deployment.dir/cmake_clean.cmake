file(REMOVE_RECURSE
  "CMakeFiles/outdoor_deployment.dir/outdoor_deployment.cpp.o"
  "CMakeFiles/outdoor_deployment.dir/outdoor_deployment.cpp.o.d"
  "outdoor_deployment"
  "outdoor_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outdoor_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
