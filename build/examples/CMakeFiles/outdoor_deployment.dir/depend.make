# Empty dependencies file for outdoor_deployment.
# This may be replaced when dependencies are built.
