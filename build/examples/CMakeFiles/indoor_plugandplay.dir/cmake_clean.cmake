file(REMOVE_RECURSE
  "CMakeFiles/indoor_plugandplay.dir/indoor_plugandplay.cpp.o"
  "CMakeFiles/indoor_plugandplay.dir/indoor_plugandplay.cpp.o.d"
  "indoor_plugandplay"
  "indoor_plugandplay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indoor_plugandplay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
