
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/indoor_plugandplay.cpp" "examples/CMakeFiles/indoor_plugandplay.dir/indoor_plugandplay.cpp.o" "gcc" "examples/CMakeFiles/indoor_plugandplay.dir/indoor_plugandplay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/systems/CMakeFiles/msehsim_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/msehsim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/manager/CMakeFiles/msehsim_manager.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/msehsim_node.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/msehsim_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/msehsim_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/harvest/CMakeFiles/msehsim_harvest.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/msehsim_env.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/msehsim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/msehsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
