# Empty dependencies file for indoor_plugandplay.
# This may be replaced when dependencies are built.
